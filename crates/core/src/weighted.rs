//! The weighted fractional dominating set variant (remark after
//! Theorem 4).
//!
//! Nodes carry costs `c_i ∈ [1, c_max]` and the objective becomes
//! `min Σ c_i·x_i`. Following the paper's sketch, the *effective* dynamic
//! degree is `γ̃(v) = (c_max/c_v)·δ̃(v)` — cheap nodes look "bigger" and
//! activate earlier — and a node is active when
//! `γ̃(v) ≥ [c_max·(Δ+1)]^{ℓ/k}`. The x-update and the message schedule are
//! those of Algorithm 2, so the round count stays `2k²`. The stated
//! approximation ratio is `k·(Δ+1)^{1/k}·[c_max·(Δ+1)]^{1/k}`.
//!
//! The paper only sketches this variant ("change lines 6 and 10 in the
//! appropriate way"); the interpretation implemented here is spelled out in
//! DESIGN.md and validated empirically against the stated ratio in
//! experiment T6.

use kw_graph::{CsrGraph, FractionalAssignment, VertexWeights, COVERAGE_TOLERANCE};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, RunMetrics, Status};

use crate::alg2::{validate_k, Alg2Msg};
use crate::math::frac_pow;
use crate::CoreError;

/// Per-node output of the weighted algorithm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedOutput {
    /// Final fractional value `x_i`.
    pub x: f64,
    /// Final color.
    pub is_gray: bool,
}

/// The weighted-variant node program (reuses [`Alg2Msg`] on the wire).
#[derive(Clone, Debug)]
pub struct WeightedAlg2Protocol {
    k: u32,
    delta_plus_1: f64,
    cost: f64,
    c_max: f64,
    m_best: Option<u32>,
    x: f64,
    is_gray: bool,
    delta_tilde: usize,
    t: u32,
}

impl WeightedAlg2Protocol {
    /// Creates the program for one node.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `cost < 1`, or `cost > c_max` (validated
    /// centrally by [`run_weighted_alg2`]).
    pub fn new(k: u32, delta: usize, degree: usize, cost: f64, c_max: f64) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(
            (1.0..=c_max).contains(&cost),
            "cost {cost} outside [1, c_max={c_max}]"
        );
        WeightedAlg2Protocol {
            k,
            delta_plus_1: delta as f64 + 1.0,
            cost,
            c_max,
            m_best: None,
            x: 0.0,
            is_gray: false,
            delta_tilde: degree + 1,
            t: 0,
        }
    }

    fn decode_x(&self, m: Option<u32>) -> f64 {
        match m {
            None => 0.0,
            Some(m) => frac_pow(self.delta_plus_1, -i64::from(m), self.k),
        }
    }
}

/// Broadcast-only, like the unweighted Algorithm 2: at most one
/// `Ctx::broadcast` per round, served by the engine's solo fast path.
impl Protocol for WeightedAlg2Protocol {
    type Msg = Alg2Msg;
    type Output = WeightedOutput;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Alg2Msg>) -> Status {
        let round = ctx.round();
        let t = (round / 2) as u32;
        if round % 2 == 0 {
            self.t = t;
            if t > 0 {
                let mut white = usize::from(!self.is_gray);
                for (_, msg) in ctx.inbox() {
                    if let Alg2Msg::Color(gray) = msg {
                        white += usize::from(!gray);
                    }
                }
                self.delta_tilde = white;
            }
            let l = self.k - 1 - t / self.k;
            let m = self.k - 1 - t % self.k;
            // γ̃ = (c_max/c)·δ̃ against [c_max(Δ+1)]^{ℓ/k}.
            let gamma_tilde = self.c_max / self.cost * self.delta_tilde as f64;
            let threshold = (self.c_max * self.delta_plus_1).powf(l as f64 / self.k as f64);
            if gamma_tilde >= threshold && self.m_best.is_none_or(|mb| m < mb) {
                self.m_best = Some(m);
                self.x = self.decode_x(Some(m));
            }
            ctx.broadcast(Alg2Msg::X(self.m_best));
            Status::Running
        } else {
            let mut cover = self.x;
            for (_, msg) in ctx.inbox() {
                if let Alg2Msg::X(m) = msg {
                    cover += self.decode_x(*m);
                }
            }
            if cover >= 1.0 - COVERAGE_TOLERANCE {
                self.is_gray = true;
            }
            if t + 1 == self.k * self.k {
                Status::Halted
            } else {
                ctx.broadcast(Alg2Msg::Color(self.is_gray));
                Status::Running
            }
        }
    }

    fn finish(self) -> WeightedOutput {
        WeightedOutput {
            x: self.x,
            is_gray: self.is_gray,
        }
    }
}

/// Result of a weighted run.
#[derive(Clone, Debug)]
pub struct WeightedRun {
    /// The computed feasible fractional solution.
    pub x: FractionalAssignment,
    /// Weighted objective `Σ c_i·x_i`.
    pub cost: f64,
    /// Communication metrics (`rounds == 2k²`).
    pub metrics: RunMetrics,
}

/// Runs the weighted variant on `g` with costs `weights`.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `k == 0`;
/// [`CoreError::InputMismatch`] if `weights` does not match `g`.
pub fn run_weighted_alg2(
    g: &CsrGraph,
    weights: &VertexWeights,
    k: u32,
    engine: EngineConfig,
) -> Result<WeightedRun, CoreError> {
    validate_k(k)?;
    if weights.len() != g.len() {
        return Err(CoreError::InputMismatch {
            expected: g.len(),
            got: weights.len(),
        });
    }
    let delta = g.max_degree();
    let c_max = weights.c_max();
    let report = Engine::new(g, engine, |info| {
        WeightedAlg2Protocol::new(k, delta, info.degree, weights.get(info.id), c_max)
    })
    .run()
    .map_err(CoreError::Sim)?;
    let xs: Vec<f64> = report.outputs.iter().map(|o| o.x).collect();
    let x = FractionalAssignment::from_values(xs);
    let cost = x.weighted_objective(weights);
    Ok(WeightedRun {
        x,
        cost,
        metrics: report.metrics,
    })
}

/// Centralized lockstep reference implementation of the weighted variant.
///
/// # Errors
///
/// Same as [`run_weighted_alg2`].
pub fn reference_weighted_alg2(
    g: &CsrGraph,
    weights: &VertexWeights,
    k: u32,
) -> Result<FractionalAssignment, CoreError> {
    validate_k(k)?;
    if weights.len() != g.len() {
        return Err(CoreError::InputMismatch {
            expected: g.len(),
            got: weights.len(),
        });
    }
    let n = g.len();
    let d1 = g.max_degree() as f64 + 1.0;
    let c_max = weights.c_max();
    let mut x = vec![0.0f64; n];
    let mut gray = vec![false; n];
    let mut delta_tilde: Vec<usize> = g.node_ids().map(|v| g.degree(v) + 1).collect();
    for l in (0..k).rev() {
        for m in (0..k).rev() {
            let threshold = (c_max * d1).powf(l as f64 / k as f64);
            for v in g.node_ids() {
                let i = v.index();
                let gamma_tilde = c_max / weights.get(v) * delta_tilde[i] as f64;
                if gamma_tilde >= threshold {
                    x[i] = x[i].max(frac_pow(d1, -i64::from(m), k));
                }
            }
            let mut newly_gray = Vec::new();
            for v in g.node_ids() {
                if gray[v.index()] {
                    continue;
                }
                let cover: f64 = g.closed_neighbors(v).map(|u| x[u.index()]).sum();
                if cover >= 1.0 - COVERAGE_TOLERANCE {
                    newly_gray.push(v.index());
                }
            }
            for i in newly_gray {
                gray[i] = true;
            }
            for v in g.node_ids() {
                delta_tilde[v.index()] = g.closed_neighbors(v).filter(|u| !gray[u.index()]).count();
            }
        }
    }
    Ok(FractionalAssignment::from_values(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_weights(n: usize, c_max: f64, seed: u64) -> VertexWeights {
        let mut rng = SmallRng::seed_from_u64(seed);
        VertexWeights::from_values(
            (0..n)
                .map(|_| 1.0 + rng.gen::<f64>() * (c_max - 1.0))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn uniform_weights_reduce_to_alg2() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = generators::gnp(40, 0.12, &mut rng);
        let w = VertexWeights::uniform(&g);
        for k in [1u32, 2, 3] {
            let weighted = reference_weighted_alg2(&g, &w, k).unwrap();
            let plain = crate::alg2::reference_alg2(&g, k).unwrap();
            assert_eq!(weighted.values(), plain.values(), "k={k}");
        }
    }

    #[test]
    fn feasible_with_random_costs() {
        let mut rng = SmallRng::seed_from_u64(22);
        for k in [1u32, 2, 3] {
            for c_max in [2.0, 8.0, 32.0] {
                let g = generators::gnp(36, 0.12, &mut rng);
                let w = random_weights(36, c_max, 77);
                let run = run_weighted_alg2(&g, &w, k, EngineConfig::default()).unwrap();
                assert!(run.x.is_feasible(&g), "k={k} c_max={c_max}");
                assert_eq!(run.metrics.rounds, crate::math::alg2_rounds(k));
            }
        }
    }

    #[test]
    fn distributed_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(23);
        let g = generators::unit_disk(40, 0.25, &mut rng);
        let w = random_weights(40, 10.0, 3);
        for k in [1u32, 2, 3] {
            let dist = run_weighted_alg2(&g, &w, k, EngineConfig::default()).unwrap();
            let refr = reference_weighted_alg2(&g, &w, k).unwrap();
            assert_eq!(dist.x.values(), refr.values(), "k={k}");
        }
    }

    #[test]
    fn respects_stated_ratio_against_weighted_lp() {
        let mut rng = SmallRng::seed_from_u64(24);
        for k in [1u32, 2, 3] {
            let g = generators::gnp(30, 0.15, &mut rng);
            let w = random_weights(30, 6.0, 5);
            let lp = kw_lp::domset::solve_weighted_lp_mds(&g, &w).unwrap();
            let run = run_weighted_alg2(&g, &w, k, EngineConfig::default()).unwrap();
            let bound = crate::math::weighted_lp_bound(k, g.max_degree(), w.c_max());
            assert!(
                run.cost <= bound * lp.value + 1e-6,
                "k={k}: cost {} > bound {bound} × LP {}",
                run.cost,
                lp.value
            );
        }
    }

    #[test]
    fn cheap_nodes_activate_earlier() {
        // Two adjacent hubs with identical degree; one cheap, one pricey.
        // The cheap hub's effective degree is scaled up by c_max/1, so it
        // reaches the activity threshold at least as early.
        let g = generators::complete_bipartite(2, 8);
        let mut costs = vec![1.0; 10];
        costs[1] = 16.0; // hub 1 expensive, hub 0 cheap
        let w = VertexWeights::from_values(costs).unwrap();
        let x = reference_weighted_alg2(&g, &w, 3).unwrap();
        assert!(x.is_feasible(&g));
        assert!(
            x.get(kw_graph::NodeId::new(0)) >= x.get(kw_graph::NodeId::new(1)),
            "cheap hub should carry at least as much weight"
        );
    }

    #[test]
    fn validation_errors() {
        let g = generators::path(3);
        let w = VertexWeights::uniform(&g);
        assert!(run_weighted_alg2(&g, &w, 0, EngineConfig::default()).is_err());
        let short = VertexWeights::from_values(vec![1.0, 1.0]).unwrap();
        assert!(matches!(
            run_weighted_alg2(&g, &short, 2, EngineConfig::default()),
            Err(CoreError::InputMismatch { .. })
        ));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn weighted_always_feasible(
                n in 1usize..28,
                p in 0.0f64..1.0,
                k in 1u32..4,
                c_max in 1.0f64..20.0,
                seed in any::<u64>(),
            ) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let w = random_weights(n, c_max, seed ^ 1);
                let x = reference_weighted_alg2(&g, &w, k).unwrap();
                prop_assert!(x.is_feasible(&g));
            }
        }
    }
}
