//! The full Theorem-6 algorithm as a **single** node program.
//!
//! [`Pipeline`](crate::Pipeline) composes Algorithm 3 and Algorithm 1 as
//! two engine runs, mirroring the paper's modular presentation. In a real
//! deployment there is only one network: every node runs one program that
//! transitions from the LP phase into the rounding phase on its own. This
//! module provides that program ([`CompositeProtocol`]), which
//!
//! * embeds [`Alg3Protocol`] unchanged for the first `4k² + 2k` rounds,
//! * reuses the `δ⁽²⁾` learned during Algorithm 3's setup,
//! * then performs the randomized draw, membership exchange, and fallback
//!   in 2 further rounds,
//!
//! for a total of `4k² + 2k + 2` rounds — a single uninterrupted
//! execution whose metrics cover the entire algorithm. Tests assert its
//! fractional phase is bit-identical to a standalone Algorithm 3 run and
//! its rounding draws match the standalone rounding stage under a shared
//! engine seed.

use rand::Rng;

use kw_graph::{CsrGraph, DominatingSet, FractionalAssignment};
use kw_sim::wire::{BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, RunMetrics, Status};

use crate::alg2::validate_k;
use crate::alg3::{Alg3Msg, Alg3Protocol};
use crate::rounding::RoundingConfig;
use crate::CoreError;

/// Messages of the composite protocol: Algorithm 3 traffic, then
/// membership bits.
#[derive(Clone, Debug, PartialEq)]
pub enum CompositeMsg {
    /// An Algorithm 3 message (LP phase).
    Lp(Alg3Msg),
    /// A rounding-phase membership announcement.
    InSet(bool),
}

impl WireEncode for CompositeMsg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            CompositeMsg::Lp(m) => {
                w.write_bit(false);
                m.encode(w);
            }
            CompositeMsg::InSet(b) => {
                w.write_bit(true);
                w.write_bit(*b);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        Some(if r.read_bit()? {
            CompositeMsg::InSet(r.read_bit()?)
        } else {
            CompositeMsg::Lp(Alg3Msg::decode(r)?)
        })
    }

    fn encoded_bits(&self) -> usize {
        match self {
            CompositeMsg::Lp(m) => 1 + m.encoded_bits(),
            CompositeMsg::InSet(_) => 2,
        }
    }
}

/// Per-node output of the composite run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompositeOutput {
    /// Final fractional value from the LP phase.
    pub x: f64,
    /// Whether the node joined the dominating set.
    pub in_set: bool,
    /// Whether membership came from the fallback step.
    pub via_fallback: bool,
}

/// One node program running Algorithm 3 followed by Algorithm 1.
#[derive(Clone, Debug)]
pub struct CompositeProtocol {
    rounding: RoundingConfig,
    lp: Alg3Protocol,
    lp_rounds: usize,
    in_set: bool,
    via_fallback: bool,
}

impl CompositeProtocol {
    /// Creates the program for one node of the given degree.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (validated centrally by [`run_composite`]).
    pub fn new(k: u32, rounding: RoundingConfig, degree: usize) -> Self {
        CompositeProtocol {
            rounding,
            lp: Alg3Protocol::new(k, degree),
            lp_rounds: crate::math::alg3_rounds(k),
            in_set: false,
            via_fallback: false,
        }
    }
}

/// Adapter context: lets the embedded Algorithm 3 program speak
/// `Alg3Msg` while the outer engine speaks `CompositeMsg`.
///
/// Implemented by translating messages at the boundary — unwrap the
/// inbox, re-wrap the (single) broadcast before staging it through
/// `Ctx::broadcast` — rather than by re-wrapping `Ctx`, whose send sink
/// stays opaque to algorithm code. Every phase of this protocol sends at
/// most one broadcast per round, so the engine's arena send plane serves
/// it entirely through the solo-broadcast fast path.
impl Protocol for CompositeProtocol {
    type Msg = CompositeMsg;
    type Output = CompositeOutput;

    fn on_round(&mut self, ctx: &mut Ctx<'_, CompositeMsg>) -> Status {
        let round = ctx.round();
        if round < self.lp_rounds {
            // LP phase: unwrap messages, delegate to the engine-independent
            // state machine, re-wrap the (single) broadcast.
            let inbox = ctx.inbox_slice();
            let lp_msgs = inbox.iter().filter_map(|(_, m)| match m {
                CompositeMsg::Lp(inner) => Some(inner),
                CompositeMsg::InSet(_) => None,
            });
            let (status, send) = self.lp.step(lp_msgs);
            if let Some(msg) = send {
                ctx.broadcast(CompositeMsg::Lp(msg));
            }
            debug_assert!(
                (round + 1 < self.lp_rounds) == (status == Status::Running),
                "embedded Algorithm 3 must halt exactly at 4k²+2k rounds"
            );
            Status::Running
        } else if round == self.lp_rounds {
            // Draw phase: δ⁽²⁾ is already known from the LP setup.
            let x = self.lp.state().x;
            let p = (x * self.rounding.multiplier.eval(self.lp.delta2())).min(1.0);
            self.in_set = ctx.rng().gen::<f64>() < p;
            ctx.broadcast(CompositeMsg::InSet(self.in_set));
            Status::Running
        } else {
            // Fallback phase.
            let neighbor_in = ctx
                .inbox()
                .iter()
                .any(|(_, m)| matches!(m, CompositeMsg::InSet(true)));
            if !self.in_set && !neighbor_in && !self.rounding.skip_fallback {
                self.in_set = true;
                self.via_fallback = true;
            }
            Status::Halted
        }
    }

    fn finish(self) -> CompositeOutput {
        CompositeOutput {
            x: self.lp.state().x,
            in_set: self.in_set,
            via_fallback: self.via_fallback,
        }
    }
}

/// Result of a composite single-engine run.
#[derive(Clone, Debug)]
pub struct CompositeRun {
    /// The dominating set.
    pub set: DominatingSet,
    /// The LP-phase fractional solution.
    pub fractional: FractionalAssignment,
    /// Metrics of the whole algorithm in one run
    /// (`rounds == 4k² + 2k + 2`).
    pub metrics: RunMetrics,
}

/// Runs the entire Theorem-6 algorithm as one protocol on one engine.
///
/// Semantically identical to [`Pipeline`](crate::Pipeline) with the
/// default solver; useful when a single uninterrupted metrics trace is
/// wanted.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `k == 0`; simulation errors are
/// propagated.
pub fn run_composite(
    g: &CsrGraph,
    k: u32,
    rounding: RoundingConfig,
    engine: EngineConfig,
) -> Result<CompositeRun, CoreError> {
    validate_k(k)?;
    let report = Engine::new(g, engine, |info| {
        CompositeProtocol::new(k, rounding, info.degree)
    })
    .run()
    .map_err(CoreError::Sim)?;
    let mut set = DominatingSet::new(g);
    let mut xs = Vec::with_capacity(g.len());
    for (i, out) in report.outputs.iter().enumerate() {
        if out.in_set {
            set.add(kw_graph::NodeId::new(i));
        }
        xs.push(out.x);
    }
    Ok(CompositeRun {
        set,
        fractional: FractionalAssignment::from_values(xs),
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math;
    use kw_graph::generators;
    use kw_sim::wire::roundtrip;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn message_roundtrip() {
        for m in [
            CompositeMsg::Lp(Alg3Msg::Uint(9)),
            CompositeMsg::Lp(Alg3Msg::Active),
            CompositeMsg::Lp(Alg3Msg::Color(true)),
            CompositeMsg::InSet(false),
            CompositeMsg::InSet(true),
        ] {
            assert_eq!(roundtrip(&m), Some(m.clone()));
        }
    }

    #[test]
    fn single_run_round_count() {
        let g = generators::grid(5, 5);
        for k in [1u32, 2, 3] {
            let run =
                run_composite(&g, k, RoundingConfig::default(), EngineConfig::seeded(1)).unwrap();
            assert_eq!(run.metrics.rounds, math::alg3_rounds(k) + 2);
            assert!(run.set.is_dominating(&g));
            assert!(run.fractional.is_feasible(&g));
        }
    }

    #[test]
    fn dominates_across_families_and_seeds() {
        let mut rng = SmallRng::seed_from_u64(50);
        for seed in 0..6u64 {
            let g = generators::gnp(60, 0.1, &mut rng);
            let run = run_composite(&g, 2, RoundingConfig::default(), EngineConfig::seeded(seed))
                .unwrap();
            assert!(run.set.is_dominating(&g), "seed {seed}");
        }
    }

    #[test]
    fn fractional_phase_identical_to_standalone_alg3() {
        let mut rng = SmallRng::seed_from_u64(51);
        let g = generators::unit_disk(70, 0.2, &mut rng);
        let k = 3;
        let composite =
            run_composite(&g, k, RoundingConfig::default(), EngineConfig::seeded(4)).unwrap();
        let standalone = crate::alg3::run_alg3(&g, k, EngineConfig::seeded(4)).unwrap();
        assert_eq!(composite.fractional.values(), standalone.x.values());
    }

    #[test]
    fn rounding_phase_matches_standalone_rounding() {
        // Same engine seed ⇒ same per-node RNG streams ⇒ identical draws,
        // since neither Algorithm 3 nor the LP phase consumes randomness.
        let mut rng = SmallRng::seed_from_u64(52);
        let g = generators::gnp(50, 0.12, &mut rng);
        let k = 2;
        let seed = 9;
        let composite =
            run_composite(&g, k, RoundingConfig::default(), EngineConfig::seeded(seed)).unwrap();
        let alg3 = crate::alg3::run_alg3(&g, k, EngineConfig::seeded(seed)).unwrap();
        let rounding = crate::rounding::run_rounding_with_delta2(
            &g,
            &alg3.x,
            &alg3.delta2,
            RoundingConfig::default(),
            EngineConfig::seeded(seed),
        )
        .unwrap();
        let a: Vec<bool> = g.node_ids().map(|v| composite.set.contains(v)).collect();
        let b: Vec<bool> = g.node_ids().map(|v| rounding.set.contains(v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn k0_rejected() {
        let g = generators::path(3);
        assert!(run_composite(&g, 0, RoundingConfig::default(), EngineConfig::default()).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = kw_graph::CsrGraph::empty(0);
        let run = run_composite(&g, 2, RoundingConfig::default(), EngineConfig::default()).unwrap();
        assert!(run.set.is_empty());
    }

    #[test]
    fn isolated_nodes_join_via_fallback() {
        let g = kw_graph::CsrGraph::empty(4);
        let run = run_composite(&g, 2, RoundingConfig::default(), EngineConfig::seeded(3)).unwrap();
        assert_eq!(run.set.len(), 4);
        assert!(run.set.is_dominating(&g));
    }
}
