//! Algorithm 2: distributed `LP_MDS` approximation when `Δ` is known.
//!
//! Every node runs `k` outer iterations (indexed `ℓ = k−1 … 0`) of `k`
//! inner iterations (indexed `m = k−1 … 0`). A node is *active* in an inner
//! iteration when its dynamic degree `δ̃` (the number of still-uncovered
//! nodes in its closed neighborhood) is at least `(Δ+1)^{ℓ/k}`; active
//! nodes raise their fractional value to `x := max(x, (Δ+1)^{−m/k})`. Each
//! inner iteration exchanges two messages — the x-values and then the
//! colors — for exactly `2k²` rounds (Theorem 4).
//!
//! ## Message-order note (listing vs. proofs)
//!
//! The journal listing sends the *color* message before the *x* message
//! inside each inner iteration. Taken literally, the dynamic degree a node
//! uses in its activity check would lag the true covering state by one full
//! iteration, and the Lemma 2 invariant (`δ̃ ≤ (Δ+1)^{(ℓ+1)/k}` at the
//! start of outer iteration `ℓ`) would not hold on e.g. star graphs. We
//! implement the order the proofs (and the paper's own Algorithm 3 listing)
//! require: x-exchange, recolor, color-exchange, δ̃-update. The runtime
//! invariant checkers in [`crate::invariants`] verify Lemmas 2–4 on every
//! run.
//!
//! # Example
//!
//! ```
//! use kw_graph::generators;
//! use kw_core::alg2::run_alg2;
//! use kw_sim::EngineConfig;
//!
//! let g = generators::petersen();
//! let run = run_alg2(&g, 2, EngineConfig::default())?;
//! assert!(run.x.is_feasible(&g));
//! assert_eq!(run.metrics.rounds, 8); // 2k²
//! # Ok::<(), kw_core::CoreError>(())
//! ```

use kw_graph::{CsrGraph, FractionalAssignment, COVERAGE_TOLERANCE};
use kw_sim::wire::{self, BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, RunMetrics, Status};

use crate::math::frac_pow;
use crate::CoreError;

/// Messages exchanged by Algorithm 2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Alg2Msg {
    /// The sender's current x-value, encoded as the exponent `m` of
    /// `x = (Δ+1)^{−m/k}` (`None` means `x = 0`). `O(log k)` bits.
    X(Option<u32>),
    /// Whether the sender is gray (covered). 2 bits.
    Color(bool),
}

impl WireEncode for Alg2Msg {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Alg2Msg::X(m) => {
                w.write_bit(false);
                w.write_gamma(m.map_or(0, |m| u64::from(m) + 1));
            }
            Alg2Msg::Color(gray) => {
                w.write_bit(true);
                w.write_bit(*gray);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        Some(if r.read_bit()? {
            Alg2Msg::Color(r.read_bit()?)
        } else {
            match r.read_gamma()? {
                0 => Alg2Msg::X(None),
                m => Alg2Msg::X(Some(u32::try_from(m - 1).ok()?)),
            }
        })
    }

    fn encoded_bits(&self) -> usize {
        match self {
            Alg2Msg::X(m) => 1 + wire::gamma_len(m.map_or(0, |m| u64::from(m) + 1)),
            Alg2Msg::Color(_) => 2,
        }
    }
}

/// Read-only view of a node's Algorithm 2 state, for observers.
#[derive(Clone, Copy, Debug)]
pub struct Alg2State {
    /// Current fractional value.
    pub x: f64,
    /// Whether the node is covered (gray).
    pub is_gray: bool,
    /// Current dynamic degree `δ̃` (white nodes in the closed
    /// neighborhood, as known to the node).
    pub delta_tilde: usize,
    /// Whether the node was active in the current inner iteration.
    pub active: bool,
    /// Completed-or-current inner iteration index `t = (k−1−ℓ)·k + (k−1−m)`.
    pub iteration: u32,
}

/// Per-node output of Algorithm 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alg2Output {
    /// Final fractional value `x_i`.
    pub x: f64,
    /// Final color.
    pub is_gray: bool,
}

/// The Algorithm 2 node program.
///
/// Requires global knowledge of the maximum degree `Δ`, exactly as the
/// paper assumes ("all nodes know ∆"); [`run_alg2`] supplies it from the
/// graph.
#[derive(Clone, Debug)]
pub struct Alg2Protocol {
    k: u32,
    delta_plus_1: f64,
    m_best: Option<u32>,
    x: f64,
    is_gray: bool,
    delta_tilde: usize,
    active: bool,
    t: u32,
}

impl Alg2Protocol {
    /// Creates the program for one node.
    ///
    /// `degree` is the node's own degree; `delta` the global maximum
    /// degree; `k` the trade-off parameter.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (validated centrally by [`run_alg2`]).
    pub fn new(k: u32, delta: usize, degree: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        Alg2Protocol {
            k,
            delta_plus_1: delta as f64 + 1.0,
            m_best: None,
            x: 0.0,
            is_gray: false,
            delta_tilde: degree + 1,
            active: false,
            t: 0,
        }
    }

    /// Observer snapshot of the node's state.
    pub fn state(&self) -> Alg2State {
        Alg2State {
            x: self.x,
            is_gray: self.is_gray,
            delta_tilde: self.delta_tilde,
            active: self.active,
            iteration: self.t,
        }
    }

    fn decode_x(&self, m: Option<u32>) -> f64 {
        match m {
            None => 0.0,
            Some(m) => frac_pow(self.delta_plus_1, -i64::from(m), self.k),
        }
    }
}

/// Broadcast-only: each round stages at most one `Ctx::broadcast`, the
/// shape the engine's arena send plane serves through its solo fast path
/// (metrics are charged and the payload cached at the moment of the
/// send; delivery never re-walks a send buffer).
impl Protocol for Alg2Protocol {
    type Msg = Alg2Msg;
    type Output = Alg2Output;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Alg2Msg>) -> Status {
        let round = ctx.round();
        let t = (round / 2) as u32;
        if round % 2 == 0 {
            // Step 0 of iteration t: ingest colors from the previous
            // iteration, run the activity check, raise x, send x.
            self.t = t;
            if t > 0 {
                let mut white = usize::from(!self.is_gray);
                for (_, msg) in ctx.inbox() {
                    match msg {
                        Alg2Msg::Color(gray) => white += usize::from(!gray),
                        // Honest lock-step senders never mix variants;
                        // a wrong-variant payload is byzantine corruption
                        // that happened to decode — garbage, dropped.
                        Alg2Msg::X(_) => {}
                    }
                }
                self.delta_tilde = white;
            }
            let l = self.k - 1 - t / self.k;
            let m = self.k - 1 - t % self.k;
            let threshold = frac_pow(self.delta_plus_1, i64::from(l), self.k);
            self.active = self.delta_tilde as f64 >= threshold;
            if self.active && self.m_best.is_none_or(|mb| m < mb) {
                self.m_best = Some(m);
                self.x = self.decode_x(Some(m));
            }
            ctx.broadcast(Alg2Msg::X(self.m_best));
            Status::Running
        } else {
            // Step 1 of iteration t: ingest x-values, recolor, send color.
            let mut cover = self.x;
            for (_, msg) in ctx.inbox() {
                match msg {
                    Alg2Msg::X(m) => cover += self.decode_x(*m),
                    Alg2Msg::Color(_) => {} // byzantine garbage (see step 0)
                }
            }
            if cover >= 1.0 - COVERAGE_TOLERANCE {
                self.is_gray = true;
            }
            if t + 1 == self.k * self.k {
                Status::Halted
            } else {
                ctx.broadcast(Alg2Msg::Color(self.is_gray));
                Status::Running
            }
        }
    }

    fn finish(self) -> Alg2Output {
        Alg2Output {
            x: self.x,
            is_gray: self.is_gray,
        }
    }
}

/// Result of a distributed Algorithm 2 run.
#[derive(Clone, Debug)]
pub struct Alg2Run {
    /// The computed feasible `LP_MDS` solution.
    pub x: FractionalAssignment,
    /// Final colors (all gray on a correct run).
    pub gray: Vec<bool>,
    /// Communication metrics (`rounds == 2k²`).
    pub metrics: RunMetrics,
    /// Messages sent per node.
    pub node_messages: Vec<u64>,
}

/// Runs Algorithm 2 on `g` with parameter `k`.
///
/// `Δ` is taken from the graph, mirroring the paper's assumption that all
/// nodes know the maximum degree.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `k == 0`; simulation errors are
/// propagated (they indicate bugs, not expected outcomes).
pub fn run_alg2(g: &CsrGraph, k: u32, engine: EngineConfig) -> Result<Alg2Run, CoreError> {
    validate_k(k)?;
    let delta = g.max_degree();
    let report = Engine::new(g, engine, |info| Alg2Protocol::new(k, delta, info.degree))
        .run()
        .map_err(CoreError::Sim)?;
    let mut xs = Vec::with_capacity(g.len());
    let mut gray = Vec::with_capacity(g.len());
    for out in &report.outputs {
        xs.push(out.x);
        gray.push(out.is_gray);
    }
    Ok(Alg2Run {
        x: FractionalAssignment::from_values(xs),
        gray,
        metrics: report.metrics,
        node_messages: report.node_messages,
    })
}

pub(crate) fn validate_k(k: u32) -> Result<(), CoreError> {
    if k == 0 {
        Err(CoreError::InvalidConfig {
            reason: "k must be at least 1".to_string(),
        })
    } else {
        Ok(())
    }
}

/// Centralized lockstep reference implementation of Algorithm 2.
///
/// Executes the identical schedule and floating-point operations as the
/// distributed protocol; tests assert bit-identical outputs. This is the
/// implementation to read when studying the algorithm, and the oracle that
/// catches engine-level bugs.
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `k == 0`.
pub fn reference_alg2(g: &CsrGraph, k: u32) -> Result<FractionalAssignment, CoreError> {
    validate_k(k)?;
    let n = g.len();
    let d1 = g.max_degree() as f64 + 1.0;
    let mut x = vec![0.0f64; n];
    let mut gray = vec![false; n];
    let mut delta_tilde: Vec<usize> = g.node_ids().map(|v| g.degree(v) + 1).collect();
    for l in (0..k).rev() {
        for m in (0..k).rev() {
            let threshold = frac_pow(d1, i64::from(l), k);
            // Activity check + x raise (step 0).
            let active: Vec<bool> = (0..n).map(|i| delta_tilde[i] as f64 >= threshold).collect();
            for i in 0..n {
                if active[i] {
                    x[i] = x[i].max(frac_pow(d1, -i64::from(m), k));
                }
            }
            // Recolor from x sums (step 1), summing in closed-neighbor
            // order to match the distributed message order exactly.
            let mut newly_gray = Vec::new();
            for v in g.node_ids() {
                if gray[v.index()] {
                    continue;
                }
                let cover: f64 = g.closed_neighbors(v).map(|u| x[u.index()]).sum();
                if cover >= 1.0 - COVERAGE_TOLERANCE {
                    newly_gray.push(v.index());
                }
            }
            for i in newly_gray {
                gray[i] = true;
            }
            // δ̃ update from fresh colors (start of next step 0).
            for v in g.node_ids() {
                delta_tilde[v.index()] = g.closed_neighbors(v).filter(|u| !gray[u.index()]).count();
            }
        }
    }
    Ok(FractionalAssignment::from_values(x))
}

/// Convenience: the objective value Algorithm 2 would report for `g`
/// without running the simulator (reference implementation).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] if `k == 0`.
pub fn reference_alg2_value(g: &CsrGraph, k: u32) -> Result<f64, CoreError> {
    Ok(reference_alg2(g, k)?.objective())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::{generators, NodeId};
    use kw_sim::wire::roundtrip;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn check_graph(g: &CsrGraph, k: u32) -> Alg2Run {
        let run = run_alg2(g, k, EngineConfig::default()).unwrap();
        assert!(run.x.is_feasible(g), "infeasible x for k={k} on {g:?}");
        assert!(run.gray.iter().all(|&c| c), "all nodes must end gray");
        assert_eq!(
            run.metrics.rounds,
            crate::math::alg2_rounds(k),
            "round count (Theorem 4)"
        );
        run
    }

    #[test]
    fn message_roundtrip() {
        for msg in [
            Alg2Msg::X(None),
            Alg2Msg::X(Some(0)),
            Alg2Msg::X(Some(7)),
            Alg2Msg::Color(true),
            Alg2Msg::Color(false),
        ] {
            assert_eq!(roundtrip(&msg), Some(msg.clone()));
        }
        // O(log k)-bit claim: exponent 7 costs 1 tag + gamma(8) = 8 bits.
        assert_eq!(Alg2Msg::X(Some(7)).encoded_bits(), 8);
        assert_eq!(Alg2Msg::Color(true).encoded_bits(), 2);
    }

    #[test]
    fn feasible_on_fixed_families() {
        for k in [1u32, 2, 3] {
            check_graph(&generators::star(10), k);
            check_graph(&generators::cycle(12), k);
            check_graph(&generators::petersen(), k);
            check_graph(&generators::grid(4, 5), k);
            check_graph(&generators::star_of_cliques(3, 5), k);
            check_graph(&generators::complete(8), k);
        }
    }

    #[test]
    fn isolated_and_empty() {
        let g = CsrGraph::empty(3);
        let run = check_graph(&g, 2);
        // Isolated nodes must self-cover with x = 1.
        assert!(run.x.values().iter().all(|&x| (x - 1.0).abs() < 1e-12));
        let g0 = CsrGraph::empty(0);
        let run = run_alg2(&g0, 2, EngineConfig::default()).unwrap();
        assert_eq!(run.x.len(), 0);
    }

    #[test]
    fn k1_sets_everything_to_one() {
        let g = generators::cycle(6);
        let run = check_graph(&g, 1);
        assert!(run.x.values().iter().all(|&x| x == 1.0));
        assert_eq!(run.metrics.rounds, 2);
    }

    #[test]
    fn k0_rejected() {
        let g = generators::path(2);
        assert!(matches!(
            run_alg2(&g, 0, EngineConfig::default()),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(reference_alg2(&g, 0).is_err());
    }

    #[test]
    fn distributed_matches_reference_exactly() {
        let mut rng = SmallRng::seed_from_u64(5);
        for k in [1u32, 2, 3, 4] {
            for g in [
                generators::gnp(60, 0.08, &mut rng),
                generators::unit_disk(60, 0.2, &mut rng),
                generators::barabasi_albert(60, 2, &mut rng),
                generators::star_of_cliques(4, 6),
            ] {
                let dist = run_alg2(&g, k, EngineConfig::default()).unwrap();
                let reference = reference_alg2(&g, k).unwrap();
                assert_eq!(
                    dist.x.values(),
                    reference.values(),
                    "k={k} mismatch on {g:?}"
                );
            }
        }
    }

    #[test]
    fn objective_respects_theorem4_bound_against_lp() {
        let mut rng = SmallRng::seed_from_u64(6);
        for k in [1u32, 2, 3] {
            for g in [
                generators::gnp(40, 0.1, &mut rng),
                generators::cycle(24),
                generators::star_of_cliques(3, 5),
            ] {
                let lp = kw_lp::domset::solve_lp_mds(&g).unwrap();
                let val = reference_alg2_value(&g, k).unwrap();
                let bound = crate::math::alg2_lp_bound(k, g.max_degree());
                assert!(
                    val <= bound * lp.value + 1e-6,
                    "k={k}: {val} > {bound} × {} on {g:?}",
                    lp.value
                );
            }
        }
    }

    #[test]
    fn message_complexity_per_node() {
        let g = generators::gnp(50, 0.15, &mut SmallRng::seed_from_u64(7));
        let k = 3u32;
        let run = check_graph(&g, k);
        let k2 = (k * k) as u64;
        for v in g.node_ids() {
            let deg = g.degree(v) as u64;
            // k² x-broadcasts + (k²−1) color-broadcasts.
            assert_eq!(run.node_messages[v.index()], (2 * k2 - 1) * deg);
        }
        // O(log Δ) message size: tag + gamma(m+1) with m < k.
        assert!(run.metrics.max_message_bits <= 2 * (64 - (k as u64).leading_zeros() as usize) + 3);
    }

    #[test]
    fn star_assigns_center_high_value() {
        // On a star with k=2 the center is the only high-degree node; it
        // must end with substantial x while leaves stay low.
        let g = generators::star(26); // Δ = 25
        let run = check_graph(&g, 2);
        let center = run.x.get(NodeId::new(0));
        assert!(center > 0.0);
        let leaf = run.x.get(NodeId::new(1));
        assert!(center >= leaf);
        // Objective far below n (the k=1 trivial outcome).
        assert!(run.x.objective() < 13.0, "objective {}", run.x.objective());
    }

    #[test]
    fn parallel_engine_identical() {
        let g = generators::gnp(80, 0.1, &mut SmallRng::seed_from_u64(8));
        let seq = run_alg2(
            &g,
            3,
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let par = run_alg2(
            &g,
            3,
            EngineConfig {
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq.x.values(), par.x.values());
        assert_eq!(seq.metrics, par.metrics);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn always_feasible_and_bounded(
                n in 1usize..40,
                p in 0.0f64..1.0,
                k in 1u32..5,
                seed in any::<u64>(),
            ) {
                let mut rng = SmallRng::seed_from_u64(seed);
                let g = generators::gnp(n, p, &mut rng);
                let x = reference_alg2(&g, k).unwrap();
                prop_assert!(x.is_feasible(&g));
                // Σx ≤ k(Δ+1)^{2/k} · LP_OPT ≤ k(Δ+1)^{2/k} · n, and each
                // x_i ≤ 1.
                prop_assert!(x.values().iter().all(|&v| v <= 1.0 + 1e-12));
            }
        }
    }
}
