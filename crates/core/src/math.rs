//! Shared numeric helpers and the paper's bound formulas.
//!
//! Every quantity the experiments compare against is computed here, one
//! function per theorem, so EXPERIMENTS.md rows reference a single source
//! of truth.

/// `(Δ+1)^{e_num/e_den}` — the fractional powers of `Δ+1` that drive both
/// algorithms' thresholds and x-values.
///
/// Both the distributed protocols and the centralized references call this
/// helper with identical arguments, so their floating-point results are
/// bit-identical.
///
/// # Panics
///
/// Panics if `e_den == 0`.
pub fn frac_pow(base: f64, e_num: i64, e_den: u32) -> f64 {
    assert!(
        e_den > 0,
        "fractional exponent denominator must be positive"
    );
    base.powf(e_num as f64 / e_den as f64)
}

/// Theorem 4: Algorithm 2 computes a feasible `LP_MDS` solution within
/// `k·(Δ+1)^{2/k}` of the optimum.
pub fn alg2_lp_bound(k: u32, delta: usize) -> f64 {
    k as f64 * frac_pow(delta as f64 + 1.0, 2, k)
}

/// Theorem 5: Algorithm 3 (Δ unknown) achieves
/// `k·((Δ+1)^{1/k} + (Δ+1)^{2/k})`.
pub fn alg3_lp_bound(k: u32, delta: usize) -> f64 {
    let d1 = delta as f64 + 1.0;
    k as f64 * (frac_pow(d1, 1, k) + frac_pow(d1, 2, k))
}

/// Theorem 4 (running time): Algorithm 2 terminates after exactly `2k²`
/// rounds.
pub fn alg2_rounds(k: u32) -> usize {
    2 * (k as usize) * (k as usize)
}

/// Theorem 5 (running time): Algorithm 3 terminates after `4k² + O(k)`
/// rounds; this implementation uses exactly `4k² + 2k` rounds
/// (2 setup rounds + 4 rounds per inner iteration + 2 rounds between
/// consecutive outer iterations).
pub fn alg3_rounds(k: u32) -> usize {
    let k = k as usize;
    4 * k * k + 2 * k
}

/// Theorem 3: rounding an `α`-approximate fractional solution yields an
/// expected dominating set size of at most `(1 + α·ln(Δ+1))·|DS_OPT|`.
pub fn rounding_bound(alpha: f64, delta: usize) -> f64 {
    1.0 + alpha * (delta as f64 + 1.0).ln()
}

/// Remark after Theorem 3: the alternative multiplier
/// `ln(δ⁽²⁾+1) − ln ln(δ⁽²⁾+1)` gives expected size at most
/// `2α·(ln(Δ+1) − ln ln(Δ+1))·|DS_OPT|`.
pub fn rounding_bound_alt(alpha: f64, delta: usize) -> f64 {
    let l = (delta as f64 + 1.0).ln();
    if l <= 1.0 {
        // Degenerate small-degree case: fall back to the plain bound.
        rounding_bound(alpha, delta)
    } else {
        2.0 * alpha * (l - l.ln())
    }
}

/// Theorem 6: the full pipeline's expected approximation ratio,
/// `1 + α₃·ln(Δ+1)` with `α₃` the Theorem-5 ratio — the concrete constant
/// behind the headline `O(k·Δ^{2/k}·log Δ)`.
pub fn theorem6_bound(k: u32, delta: usize) -> f64 {
    rounding_bound(alg3_lp_bound(k, delta), delta)
}

/// Remark after Theorem 4 (weighted variant): ratio
/// `k·(Δ+1)^{1/k}·[c_max·(Δ+1)]^{1/k}`.
pub fn weighted_lp_bound(k: u32, delta: usize, c_max: f64) -> f64 {
    let d1 = delta as f64 + 1.0;
    k as f64 * frac_pow(d1, 1, k) * (c_max * d1).powf(1.0 / k as f64)
}

/// The `k = Θ(log Δ)` setting from the remark after Theorem 6: the choice
/// of `k` that turns the trade-off into an `O(log²Δ)` approximation in
/// `O(log²Δ)` rounds.
pub fn log_delta_k(delta: usize) -> u32 {
    ((delta as f64 + 2.0).ln().ceil() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frac_pow_basics() {
        assert_eq!(frac_pow(4.0, 0, 3), 1.0);
        assert_eq!(frac_pow(4.0, 2, 2), 4.0);
        assert!((frac_pow(4.0, 1, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn frac_pow_rejects_zero_denominator() {
        frac_pow(2.0, 1, 0);
    }

    #[test]
    fn bounds_decrease_with_k() {
        // Larger k buys a better ratio (at quadratic round cost).
        let delta = 100;
        for k in 1..8 {
            assert!(
                alg2_lp_bound(k + 1, delta) < alg2_lp_bound(k, delta) * 2.0,
                "bound should not explode with k"
            );
        }
        // At k=1 the bound is the trivial (Δ+1)²... times 1.
        assert!((alg2_lp_bound(1, 3) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn alg3_bound_dominates_alg2() {
        for k in 1..6 {
            for delta in [1usize, 5, 50, 500] {
                assert!(alg3_lp_bound(k, delta) >= alg2_lp_bound(k, delta));
            }
        }
    }

    #[test]
    fn round_counts() {
        assert_eq!(alg2_rounds(1), 2);
        assert_eq!(alg2_rounds(3), 18);
        assert_eq!(alg3_rounds(1), 6);
        assert_eq!(alg3_rounds(3), 42);
    }

    #[test]
    fn rounding_bounds() {
        assert!((rounding_bound(1.0, 0) - 1.0).abs() < 1e-12); // ln(1) = 0
        assert!(rounding_bound(2.0, 9) > 1.0);
        // Alternative multiplier beats the plain one for large Δ and α ≥ 1.
        let delta = 100_000;
        assert!(rounding_bound_alt(1.0, delta) < 2.0 * rounding_bound(1.0, delta));
        // Degenerate case falls back.
        assert_eq!(rounding_bound_alt(1.5, 0), rounding_bound(1.5, 0));
    }

    #[test]
    fn theorem6_composes() {
        let b = theorem6_bound(2, 50);
        assert!((b - (1.0 + alg3_lp_bound(2, 50) * 51f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn weighted_reduces_to_sharper_unweighted_form() {
        // With c_max = 1 the weighted bound is k(Δ+1)^{2/k} = the Alg 2 bound.
        for k in 1..5 {
            assert!((weighted_lp_bound(k, 20, 1.0) - alg2_lp_bound(k, 20)).abs() < 1e-9);
        }
        assert!(weighted_lp_bound(2, 20, 16.0) > weighted_lp_bound(2, 20, 1.0));
    }

    #[test]
    fn log_delta_choice() {
        assert_eq!(log_delta_k(0), 1);
        assert!(log_delta_k(100) >= 4);
        assert!(log_delta_k(100_000) >= 11);
    }
}
