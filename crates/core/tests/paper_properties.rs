//! Deep property tests of the paper's algorithms: the exact shape of the
//! produced values, coloring semantics, determinism, and cross-variant
//! consistency.

use kw_core::alg2::{reference_alg2, run_alg2};
use kw_core::alg3::{reference_alg3, run_alg3, XCode};
use kw_core::invariants::{run_alg2_checked, run_alg3_checked};
use kw_core::math::frac_pow;
use kw_graph::{generators, CsrGraph, COVERAGE_TOLERANCE};
use kw_sim::EngineConfig;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Algorithm 2's x-values live in the discrete set
/// `{0} ∪ {(Δ+1)^{-m/k} : 0 ≤ m < k}` — the structure its Lemma-4
/// accounting depends on.
#[test]
fn alg2_values_come_from_the_exponent_lattice() {
    let mut rng = SmallRng::seed_from_u64(1);
    for k in [1u32, 2, 3, 5] {
        let g = generators::gnp(50, 0.1, &mut rng);
        let d1 = g.max_degree() as f64 + 1.0;
        let lattice: Vec<f64> = (0..k).map(|m| frac_pow(d1, -i64::from(m), k)).collect();
        let x = reference_alg2(&g, k).unwrap();
        for (i, &v) in x.values().iter().enumerate() {
            assert!(
                v == 0.0 || lattice.contains(&v),
                "x[{i}] = {v} not on the (Δ+1)^(-m/{k}) lattice"
            );
        }
    }
}

/// Final colors must agree with final coverage: gray ⇔ covered.
#[test]
fn colors_match_coverage_at_termination() {
    let mut rng = SmallRng::seed_from_u64(2);
    for k in [1u32, 3] {
        let g = generators::gnp(60, 0.08, &mut rng);
        for run_gray in [
            run_alg2(&g, k, EngineConfig::default()).unwrap().gray,
            run_alg3(&g, k, EngineConfig::default()).unwrap().gray,
        ] {
            // Feasibility forces everyone covered, so all gray.
            assert!(run_gray.iter().all(|&c| c));
        }
    }
}

/// The x-values of Algorithm 3 are powers `a^{-m/(m+1)}`; XCode must
/// reproduce the node's value exactly (what the wire format relies on).
#[test]
fn alg3_xcode_reconstruction_is_exact() {
    for a in [1u64, 2, 7, 100, 10_000] {
        for m in 0u32..6 {
            let code = XCode { a, m };
            let direct = (a as f64).powf(-(m as f64) / (m as f64 + 1.0));
            assert_eq!(code.value(), direct);
            assert!(code.value() > 0.0 && code.value() <= 1.0);
        }
    }
}

/// Running either algorithm twice (same seed or not — they are
/// deterministic) must give identical results.
#[test]
fn fractional_algorithms_are_deterministic() {
    let mut rng = SmallRng::seed_from_u64(3);
    let g = generators::unit_disk(80, 0.2, &mut rng);
    let a = run_alg3(&g, 3, EngineConfig::seeded(1)).unwrap();
    let b = run_alg3(&g, 3, EngineConfig::seeded(999)).unwrap();
    assert_eq!(
        a.x.values(),
        b.x.values(),
        "alg3 must not consume randomness"
    );
    let a2 = run_alg2(&g, 3, EngineConfig::seeded(1)).unwrap();
    let b2 = run_alg2(&g, 3, EngineConfig::seeded(999)).unwrap();
    assert_eq!(
        a2.x.values(),
        b2.x.values(),
        "alg2 must not consume randomness"
    );
}

/// On a disjoint union, each component's solution must equal the solution
/// computed on the component alone — locality made literal.
#[test]
fn solutions_are_component_local() {
    let g1 = generators::cycle(9);
    let g2 = generators::star(7);
    // Union: nodes 0..9 the cycle, 9..16 the star.
    let mut edges: Vec<(usize, usize)> = g1.edges().map(|(u, v)| (u.index(), v.index())).collect();
    edges.extend(g2.edges().map(|(u, v)| (u.index() + 9, v.index() + 9)));
    let union = CsrGraph::from_edges(16, edges).unwrap();
    let k = 3;
    // Alg 3 is fully local: the union solution restricted to each part
    // must equal the standalone solutions (Δ-knowledge would break this
    // for Alg 2, which is exactly the point of Algorithm 3).
    let whole = reference_alg3(&union, k).unwrap();
    let part1 = reference_alg3(&g1, k).unwrap();
    let part2 = reference_alg3(&g2, k).unwrap();
    assert_eq!(&whole.values()[..9], part1.values());
    assert_eq!(&whole.values()[9..], part2.values());
}

/// Algorithm 2 does depend on the global Δ: the same cycle embedded next
/// to a high-degree star must behave differently than standalone.
#[test]
fn alg2_is_delta_global() {
    let g1 = generators::cycle(9);
    let mut edges: Vec<(usize, usize)> = g1.edges().map(|(u, v)| (u.index(), v.index())).collect();
    // Attach a star of 30 leaves on separate nodes.
    for leaf in 10..40 {
        edges.push((9, leaf));
    }
    let union = CsrGraph::from_edges(40, edges).unwrap();
    let whole = reference_alg2(&union, 3).unwrap();
    let alone = reference_alg2(&g1, 3).unwrap();
    assert_ne!(
        &whole.values()[..9],
        alone.values(),
        "Δ-aware thresholds must differ when a remote hub raises Δ"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    /// Invariants (Lemmas 2–7) hold on arbitrary random graphs — the
    /// strongest statement the checkers can make.
    #[test]
    fn invariants_hold_on_random_instances(
        n in 1usize..45,
        p in 0.0f64..0.6,
        k in 1u32..5,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let (run2, rep2) = run_alg2_checked(&g, k, EngineConfig::default()).unwrap();
        prop_assert!(run2.x.is_feasible(&g));
        prop_assert!(rep2.is_clean(), "alg2: {:?}", rep2.violations);
        let (run3, rep3) = run_alg3_checked(&g, k, EngineConfig::default()).unwrap();
        prop_assert!(run3.x.is_feasible(&g));
        prop_assert!(rep3.is_clean(), "alg3: {:?}", rep3.violations);
    }

    /// Coverage sums at termination exceed 1 (tolerance-adjusted) for
    /// every node under both algorithms.
    #[test]
    fn coverage_certificates(
        n in 1usize..40,
        p in 0.0f64..1.0,
        k in 1u32..4,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        for x in [reference_alg2(&g, k).unwrap(), reference_alg3(&g, k).unwrap()] {
            for v in g.node_ids() {
                prop_assert!(x.coverage(&g, v) >= 1.0 - COVERAGE_TOLERANCE);
            }
        }
    }

    /// The weighted variant with uniform weights is *identical* to
    /// Algorithm 2 — on arbitrary graphs, not just fixtures.
    #[test]
    fn weighted_uniform_equals_alg2(
        n in 1usize..40,
        p in 0.0f64..0.6,
        k in 1u32..4,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let w = kw_graph::VertexWeights::uniform(&g);
        let a = kw_core::weighted::reference_weighted_alg2(&g, &w, k).unwrap();
        let b = reference_alg2(&g, k).unwrap();
        prop_assert_eq!(a.values(), b.values());
    }

    /// Rounding respects the probability semantics: with x scaled so that
    /// p_i = 1 everywhere, every node joins.
    #[test]
    fn saturated_rounding_is_deterministic(n in 1usize..30, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let x = kw_graph::FractionalAssignment::uniform(&g, 1.0);
        let run = kw_core::rounding::run_rounding(
            &g,
            &x,
            Default::default(),
            EngineConfig::seeded(seed),
        ).unwrap();
        // p_i = min(1, 1·ln(δ²+1)) = 1 whenever δ² ≥ 2; isolated parts
        // join via the fallback, so everyone is in.
        let all_high_degree = g.node_ids().all(|v| g.delta2(v) >= 2);
        if all_high_degree {
            prop_assert_eq!(run.set.len(), n);
        }
        prop_assert!(run.set.is_dominating(&g));
    }
}
