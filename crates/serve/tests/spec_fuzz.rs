//! Fuzzing the two grammars the daemon exposes to untrusted clients.
//!
//! `POST /solve` hands attacker-controlled strings straight to
//! `Workload::parse` and `SolverSpec::parse` (via the registry), so both
//! must be total: any input is either `Ok` or a structured `Err`, never
//! a panic. The workspace's offline proptest stand-in has only numeric
//! strategies, so each case derives an adversarial string from a fuzzed
//! `u64` seed — mutations of valid specs, random splices of the
//! grammars' meta-characters, and raw byte noise.

use kw_bench::workloads::Workload;
use kw_core::solver::SolverSpec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fragments that real specs are made of — names, separators, numbers,
/// and near-miss junk. Splicing these finds parser edge cases far
/// faster than uniform random bytes.
const FRAGMENTS: &[&str] = &[
    "gnp",
    "udg",
    "ba",
    "grid",
    "tree",
    "cliques",
    "dimacs",
    "kw",
    "greedy",
    "jrs",
    "trivial",
    "luby-mis",
    "connected",
    "n",
    "p",
    "r",
    "m",
    "side",
    "b",
    "d",
    "c",
    "size",
    "k",
    "=",
    ":",
    ",",
    "(",
    ")",
    "/",
    "0",
    "1",
    "-1",
    "7",
    "1e9",
    "0.5",
    ".",
    "..",
    "NaN",
    "inf",
    "-",
    "+",
    " ",
    "",
    "\t",
    "é",
    "�",
    "\u{0}",
    "99999999999999999999",
    "n=",
    "=8",
    "n=8",
    "p=0.1",
    "side=4",
];

/// Valid specs to mutate (one char swapped, truncated, duplicated).
const VALID: &[&str] = &[
    "gnp:n=64,p=0.1",
    "udg:n=50,r=0.2",
    "ba:n=64,m=3",
    "grid:side=6",
    "tree:b=2,d=4",
    "cliques:c=3,size=4",
    "dimacs:/tmp/nope.col",
    "kw:k=2",
    "greedy",
    "connected(greedy)",
    "jrs",
];

fn adversarial(seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    match rng.gen_range(0u32..4) {
        // Splice random fragments.
        0 => {
            let n = rng.gen_range(0usize..8);
            (0..n)
                .map(|_| FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())])
                .collect()
        }
        // Mutate a valid spec: flip one byte to a random ASCII char.
        1 => {
            let mut s: Vec<u8> = VALID[rng.gen_range(0..VALID.len())].bytes().collect();
            if !s.is_empty() {
                let i = rng.gen_range(0..s.len());
                s[i] = rng.gen_range(0x20u8..0x7f);
            }
            String::from_utf8_lossy(&s).into_owned()
        }
        // Truncate or duplicate a valid spec.
        2 => {
            let s = VALID[rng.gen_range(0..VALID.len())];
            if rng.gen_bool(0.5) {
                let cut = rng.gen_range(0..=s.len());
                s.get(..cut).map(str::to_string).unwrap_or_default()
            } else {
                format!("{s}{s}")
            }
        }
        // Raw noise: random printable-and-not bytes, lossily decoded.
        _ => {
            let n = rng.gen_range(0usize..32);
            let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..=255)).collect();
            String::from_utf8_lossy(&bytes).into_owned()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `Workload::parse` is total, and accepted specs round-trip:
    /// re-parsing what `spec()` prints yields the same workload.
    #[test]
    fn workload_parse_never_panics(seed in any::<u64>()) {
        let input = adversarial(seed);
        if let Ok(w) = Workload::parse(&input) {
            let reparsed = Workload::parse(&w.spec())
                .expect("canonical spec must re-parse");
            prop_assert_eq!(reparsed.spec(), w.spec());
            prop_assert_eq!(reparsed.label(), w.label());
        }
    }

    /// `SolverSpec::parse` is total, with the same round-trip law
    /// (`Display` renders the canonical form).
    #[test]
    fn solver_spec_parse_never_panics(seed in any::<u64>()) {
        let input = adversarial(seed);
        if let Ok(s) = SolverSpec::parse(&input) {
            let canonical = s.to_string();
            let reparsed = SolverSpec::parse(&canonical)
                .expect("canonical spec must re-parse");
            prop_assert_eq!(reparsed.to_string(), canonical);
        }
    }

    /// The registry's `build` (the actual `/solve` path: grammar plus
    /// name lookup plus parameter validation) is total too.
    #[test]
    fn registry_build_never_panics(seed in any::<u64>()) {
        let registry = kw_baselines::registry();
        let input = adversarial(seed);
        let _ = registry.build(&input);
    }
}

/// The exact strings a confused client is most likely to send: empty,
/// whitespace, half-written pairs, wrong separators. All must be `Err`
/// (none are valid), all without panicking.
#[test]
fn hand_picked_adversarial_specs_error_cleanly() {
    let cases = [
        "",
        " ",
        ":",
        "=",
        ",",
        "gnp",
        "gnp:",
        "gnp:n",
        "gnp:n=",
        "gnp:n=,p=",
        "gnp:n=64",
        "gnp:n=64,p=0.1,extra=1",
        "gnp:n=-1,p=0.1",
        "gnp:n=64,p=nope",
        "grid:side=0x10",
        "tree:b=2,d=99999999999999999999",
        "dimacs:",
        "kw:",
        "kw:k=",
        "kw:k=0x2",
        "connected(",
        "connected()",
        "connected(nope)",
        "(greedy)",
    ];
    let registry = kw_baselines::registry();
    for case in cases {
        assert!(
            Workload::parse(case).is_err(),
            "workload grammar must reject {case:?}"
        );
        // The solver *grammar* alone is permissive about values; the
        // registry build (which is what `/solve` runs) must reject.
        assert!(
            registry.build(case).is_err(),
            "solver registry must reject {case:?}"
        );
    }
}
