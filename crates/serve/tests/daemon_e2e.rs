//! End-to-end tests of the daemon over real TCP on ephemeral ports:
//! the endpoint contract, answer caching, error mapping, graceful
//! drain, and the restart-warms-from-store guarantee.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use kw_results::json::Json;
use kw_serve::{http_request, ClientResponse, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        store: None,
        deadline: TIMEOUT,
    }
}

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("kw_serve_e2e_{tag}_{}.jsonl", std::process::id()))
}

fn solve_body(workload: &str, solver: &str, seed: u64) -> String {
    format!("{{\"workload\": \"{workload}\", \"solver\": \"{solver}\", \"seed\": {seed}}}")
}

fn post_solve(server: &Server, body: &str) -> ClientResponse {
    http_request(server.addr(), "POST", "/solve", body.as_bytes(), TIMEOUT).expect("solve request")
}

fn answer(resp: &ClientResponse) -> Json {
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    Json::parse(std::str::from_utf8(&resp.body).unwrap()).expect("response must be JSON")
}

fn metric(server: &Server, name: &str) -> f64 {
    let resp = http_request(server.addr(), "GET", "/metrics", b"", TIMEOUT).expect("metrics");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8_lossy(&resp.body).to_string();
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{text}"))
}

#[test]
fn healthz_and_metrics_answer() {
    let server = Server::start(test_config()).unwrap();
    let health = http_request(server.addr(), "GET", "/healthz", b"", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, b"ok\n");

    assert_eq!(metric(&server, "kw_serve_responses_5xx_total"), 0.0);
    // The scrape itself is being served while it renders.
    assert_eq!(metric(&server, "kw_serve_inflight"), 1.0);
    server.shutdown();
}

#[test]
fn solve_misses_then_hits_and_answers_stay_identical() {
    let server = Server::start(test_config()).unwrap();
    let body = solve_body("grid:side=5", "greedy", 0);

    let first = answer(&post_solve(&server, &body));
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(first.get("dominates").and_then(Json::as_bool), Some(true));
    assert_eq!(first.get("n").and_then(Json::as_u64), Some(25));
    assert_eq!(
        first.get("workload").and_then(Json::as_str),
        Some("grid(5x5)")
    );
    assert_eq!(first.get("solver").and_then(Json::as_str), Some("greedy"));

    let second = answer(&post_solve(&server, &body));
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    // Everything except the cached flag is identical: same outcome,
    // same shape, served from memory.
    for field in [
        "solver",
        "workload",
        "seed",
        "n",
        "max_degree",
        "size",
        "rounds",
        "dominates",
    ] {
        assert_eq!(
            first.get(field).map(Json::render),
            second.get(field).map(Json::render),
            "field {field} must not change between miss and hit"
        );
    }

    assert_eq!(metric(&server, "kw_serve_cache_misses_total"), 1.0);
    assert_eq!(metric(&server, "kw_serve_cache_hits_total"), 1.0);
    // 2 solves + the 2 scrapes above; the in-progress scrape is only
    // counted once its response is written.
    assert_eq!(metric(&server, "kw_serve_requests_total"), 4.0);
    server.shutdown();
}

#[test]
fn error_paths_map_to_4xx_never_5xx() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr();

    let cases: Vec<(ClientResponse, u16, &str)> = vec![
        (
            http_request(addr, "POST", "/solve", b"not json", TIMEOUT).unwrap(),
            400,
            "non-JSON body",
        ),
        (
            http_request(addr, "POST", "/solve", b"{}", TIMEOUT).unwrap(),
            400,
            "missing fields",
        ),
        (
            post_solve(&server, "{\"workload\": \"grid:side=5\", \"solver\": 7}"),
            400,
            "non-string solver",
        ),
        (
            post_solve(&server, &solve_body("nope:n=1", "greedy", 0)),
            400,
            "unknown workload family",
        ),
        (
            post_solve(&server, &solve_body("grid:side=5", "nope", 0)),
            400,
            "unknown solver",
        ),
        (
            post_solve(
                &server,
                "{\"workload\": \"grid:side=5\", \"solver\": \"greedy\", \"seed\": -3}",
            ),
            400,
            "negative seed",
        ),
        (
            post_solve(
                &server,
                &solve_body("dimacs:/nonexistent/g.col", "greedy", 0),
            ),
            400,
            "unreadable instance file",
        ),
        (
            http_request(addr, "GET", "/solve", b"", TIMEOUT).unwrap(),
            405,
            "GET on /solve",
        ),
        (
            http_request(addr, "POST", "/metrics", b"", TIMEOUT).unwrap(),
            405,
            "POST on /metrics",
        ),
        (
            http_request(addr, "GET", "/nope", b"", TIMEOUT).unwrap(),
            404,
            "unknown path",
        ),
    ];
    for (resp, status, what) in cases {
        assert_eq!(resp.status, status, "{what}");
        let body = Json::parse(std::str::from_utf8(&resp.body).unwrap())
            .unwrap_or_else(|e| panic!("{what}: error body must be JSON: {e}"));
        assert!(
            body.get("error").and_then(Json::as_str).is_some(),
            "{what}: error envelope"
        );
    }

    assert_eq!(metric(&server, "kw_serve_responses_5xx_total"), 0.0);
    assert!(metric(&server, "kw_serve_responses_4xx_total") >= 10.0);
    server.shutdown();
}

/// Protocol violations answer their 4xx and close the connection.
#[test]
fn protocol_violations_close_with_4xx() {
    let server = Server::start(test_config()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream
        .write_all(b"POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap(); // read to EOF: server closed
    let head = String::from_utf8_lossy(&reply);
    assert!(
        head.starts_with("HTTP/1.1 411 "),
        "chunked must answer 411, got: {head}"
    );
    assert!(head.contains("Connection: close"));
    server.shutdown();
}

/// One keep-alive connection can pipeline several requests; responses
/// come back in order on the same socket.
#[test]
fn pipelined_requests_on_one_connection() {
    let server = Server::start(test_config()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();

    let body = solve_body("grid:side=4", "trivial", 0);
    let solve = format!(
        "POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let wire = format!("{solve}{solve}GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    stream.write_all(wire.as_bytes()).unwrap();

    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap();
    let text = String::from_utf8_lossy(&reply);
    let statuses: Vec<&str> = text
        .split("HTTP/1.1 ")
        .skip(1)
        .map(|s| s.split(' ').next().unwrap())
        .collect();
    assert_eq!(statuses, ["200", "200", "200"], "full reply:\n{text}");
    // Second solve on the same connection was served from cache.
    assert!(text.contains("\"cached\":true"), "full reply:\n{text}");
    server.shutdown();
}

/// The drain contract: `/shutdown` flips the flag the bin waits on,
/// `shutdown()` joins everything, and queued requests still finish.
#[test]
fn graceful_drain_answers_inflight_requests() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr();
    assert!(!server.shutdown_requested());

    // Park a few requests in flight while shutdown is requested.
    let workers: Vec<_> = (0..4)
        .map(|seed| {
            let body = solve_body("gnp:n=48,p=0.1", "greedy", seed);
            std::thread::spawn(move || {
                http_request(addr, "POST", "/solve", body.as_bytes(), TIMEOUT)
                    .map(|r| r.status)
                    .unwrap_or(0)
            })
        })
        .collect();
    let drain = http_request(addr, "POST", "/shutdown", b"", TIMEOUT).unwrap();
    assert_eq!(drain.status, 200);
    assert!(server.shutdown_requested());
    for w in workers {
        assert_eq!(w.join().unwrap(), 200, "in-flight solves must complete");
    }
    server.shutdown(); // drains and joins; must not hang
}

/// The tentpole guarantee: kill the daemon, restart it on the same
/// store, and every previous answer is served from cache — without
/// re-solving — including across different solvers and seeds.
#[test]
fn restart_warms_cache_from_store() {
    let store = temp_store("warm");
    let _ = std::fs::remove_file(&store);
    let cells = [
        ("grid:side=5", "greedy", 0u64),
        ("grid:side=5", "kw:k=2", 3),
        ("gnp:n=40,p=0.15", "greedy", 1),
    ];

    let first = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    })
    .unwrap();
    assert_eq!(first.service().warmed(), 0);
    for (workload, solver, seed) in cells {
        let resp = answer(&post_solve(&first, &solve_body(workload, solver, seed)));
        assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(false));
    }
    first.shutdown(); // releases the store's writer lock

    let second = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    })
    .unwrap();
    assert_eq!(
        second.service().warmed(),
        cells.len(),
        "every persisted answer must warm the cache"
    );
    for (workload, solver, seed) in cells {
        let resp = answer(&post_solve(&second, &solve_body(workload, solver, seed)));
        assert_eq!(
            resp.get("cached").and_then(Json::as_bool),
            Some(true),
            "{workload}/{solver}/{seed} must come from the warmed cache"
        );
        assert!(
            resp.get("n").and_then(Json::as_u64).unwrap() > 0,
            "warmed answers still report graph shape"
        );
    }
    assert_eq!(metric(&second, "kw_serve_cache_misses_total"), 0.0);
    assert_eq!(
        metric(&second, "kw_serve_cache_warmed_total"),
        cells.len() as f64
    );
    second.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// Two daemons must not share one store: the second start fails with
/// the store's writer-lock error instead of corrupting the file.
#[test]
fn second_daemon_on_same_store_is_refused() {
    let store = temp_store("locked");
    let _ = std::fs::remove_file(&store);
    let first = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    })
    .unwrap();
    let second = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    });
    match second {
        Err(e) => assert!(
            e.to_string().contains("already open for writing"),
            "unexpected error: {e}"
        ),
        Ok(_) => panic!("second daemon must not open a locked store"),
    }
    first.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// The chaos clause: keyed into the cache by canonical spec, counted in
/// `/metrics`, persisted through restart, and rejected with 400 on
/// garbage — never a 5xx.
#[test]
fn chaos_clause_is_keyed_counted_persisted_and_validated() {
    let store = temp_store("chaos");
    let _ = std::fs::remove_file(&store);
    let server = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    })
    .unwrap();
    let clause = "drop=0.1,burst=r3-5@0.9,crash=7@r2,byz=3";
    let with_chaos = |spelling: &str| {
        format!(
            "{{\"workload\": \"grid:side=6\", \"solver\": \"kw:k=2\", \"seed\": 1, \
             \"chaos\": \"{spelling}\"}}"
        )
    };

    let first = answer(&post_solve(&server, &with_chaos(clause)));
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(metric(&server, "kw_serve_chaos_requests_total"), 1.0);

    // The `chaos:` prefix spelling normalizes to the same canonical spec
    // and therefore the same cache cell.
    let prefixed = answer(&post_solve(
        &server,
        &with_chaos(&format!("chaos:{clause}")),
    ));
    assert_eq!(prefixed.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        first.get("size").map(Json::render),
        prefixed.get("size").map(Json::render)
    );
    assert_eq!(metric(&server, "kw_serve_chaos_requests_total"), 2.0);

    // The same (workload, solver, seed) without chaos is a different
    // cell — and a reliable request never ticks the chaos counter.
    let clean = answer(&post_solve(
        &server,
        &solve_body("grid:side=6", "kw:k=2", 1),
    ));
    assert_eq!(clean.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(metric(&server, "kw_serve_chaos_requests_total"), 2.0);

    // Garbage clauses are the client's problem: 400, not 500.
    let bad = post_solve(&server, &with_chaos("drop=banana"));
    assert_eq!(bad.status, 400, "{}", String::from_utf8_lossy(&bad.body));
    let not_a_string = post_solve(
        &server,
        "{\"workload\": \"grid:side=6\", \"solver\": \"kw:k=2\", \"chaos\": 3}",
    );
    assert_eq!(not_a_string.status, 400);
    assert_eq!(metric(&server, "kw_serve_responses_5xx_total"), 0.0);
    server.shutdown();

    // Restart on the same store: both cells warm, and the chaotic answer
    // is served from the warmed cache without re-solving.
    let second = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    })
    .unwrap();
    assert_eq!(second.service().warmed(), 2);
    let warmed = answer(&post_solve(&second, &with_chaos(clause)));
    assert_eq!(warmed.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        first.get("size").map(Json::render),
        warmed.get("size").map(Json::render)
    );
    assert_eq!(metric(&second, "kw_serve_cache_misses_total"), 0.0);
    second.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// The `"threads"` knob: thread counts are normalized into the cache
/// and store key (absent and `1` share one cell, `4` is its own),
/// outcomes stay bit-identical across counts, bad values are 400s, and
/// threaded cells replay across a restart.
#[test]
fn threads_knob_is_keyed_normalized_persisted_and_validated() {
    let store = temp_store("threads");
    let _ = std::fs::remove_file(&store);
    let server = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    })
    .unwrap();
    let with_threads = |t: &str| {
        format!(
            "{{\"workload\": \"grid:side=6\", \"solver\": \"kw:k=2\", \"seed\": 2, \
             \"threads\": {t}}}"
        )
    };

    let four = answer(&post_solve(&server, &with_threads("4")));
    assert_eq!(four.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(four.get("threads").and_then(Json::as_u64), Some(4));
    let hit = answer(&post_solve(&server, &with_threads("4")));
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));

    // An omitted count is a *different* cell from threads=4 …
    let one = answer(&post_solve(
        &server,
        &solve_body("grid:side=6", "kw:k=2", 2),
    ));
    assert_eq!(one.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(one.get("threads").and_then(Json::as_u64), Some(1));
    // … but normalizes to the same cell as an explicit threads=1.
    let explicit = answer(&post_solve(&server, &with_threads("1")));
    assert_eq!(explicit.get("cached").and_then(Json::as_bool), Some(true));

    // The engine contract, observed end to end: outcomes are
    // bit-identical across thread counts — only wall times may differ.
    for field in ["dominates", "size", "rounds", "messages", "bits"] {
        assert_eq!(
            four.get(field).map(Json::render),
            one.get(field).map(Json::render),
            "field {field} must not depend on the thread count"
        );
    }

    // Out-of-range or non-integer counts are the client's problem.
    for bad in ["0", "65", "\"two\"", "-1"] {
        let resp = post_solve(&server, &with_threads(bad));
        assert_eq!(
            resp.status,
            400,
            "threads={bad}: {}",
            String::from_utf8_lossy(&resp.body)
        );
    }
    assert_eq!(metric(&server, "kw_serve_responses_5xx_total"), 0.0);
    server.shutdown();

    // Restart on the same store: both cells (1T and 4T) warm, and the
    // threaded answer replays without re-solving.
    let second = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    })
    .unwrap();
    assert_eq!(second.service().warmed(), 2);
    let warmed = answer(&post_solve(&second, &with_threads("4")));
    assert_eq!(warmed.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        four.get("size").map(Json::render),
        warmed.get("size").map(Json::render)
    );
    second.shutdown();
    let _ = std::fs::remove_file(&store);
}

/// The `"trace": true` solve path: the response carries the span-plane
/// rollup inline, phase time lands on `/metrics`, the store gains trace
/// lines — and a traced re-solve of a cached cell appends its trace
/// without duplicating the cell's record.
#[test]
fn traced_solves_return_rollups_and_persist_trace_lines() {
    let store = temp_store("trace");
    let _ = std::fs::remove_file(&store);
    let server = Server::start(ServeConfig {
        store: Some(store.clone()),
        ..test_config()
    })
    .unwrap();
    let traced_body =
        "{\"workload\": \"grid:side=6\", \"solver\": \"kw:k=2\", \"seed\": 3, \"trace\": true}";

    let first = answer(&post_solve(&server, traced_body));
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    let trace = first.get("trace").expect("traced solve returns a trace");
    assert!(trace.get("rounds").and_then(Json::as_u64).unwrap() > 0);
    let phase_us = trace.get("phase_us").expect("phase_us object");
    for phase in ["plan", "send", "deliver", "compute", "barrier"] {
        assert!(phase_us.get(phase).is_some(), "missing phase {phase}");
    }
    assert_eq!(
        trace.get("threads").and_then(Json::as_u64),
        Some(1),
        "the service solves single-threaded"
    );

    // An untraced request of the same cell hits the cache and carries no
    // trace; a traced re-request solves again and returns a fresh trace.
    let untraced_body = "{\"workload\": \"grid:side=6\", \"solver\": \"kw:k=2\", \"seed\": 3}";
    let hit = answer(&post_solve(&server, untraced_body));
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));
    assert!(hit.get("trace").is_none());
    let retraced = answer(&post_solve(&server, traced_body));
    assert_eq!(retraced.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(
        trace.get("structure_hash").map(Json::render),
        retraced
            .get("trace")
            .and_then(|t| t.get("structure_hash"))
            .map(Json::render),
        "same cell, same deterministic structure"
    );

    // Phase counters accumulate only from traced solves.
    assert_eq!(metric(&server, "kw_serve_traced_solves_total"), 2.0);
    let resp = http_request(server.addr(), "GET", "/metrics", b"", TIMEOUT).unwrap();
    let text = String::from_utf8_lossy(&resp.body).to_string();
    assert!(
        text.contains("kw_serve_solve_phase_us_total{phase=\"compute\"}"),
        "{text}"
    );

    // A malformed trace flag is the client's problem.
    let bad = post_solve(
        &server,
        "{\"workload\": \"grid:side=6\", \"solver\": \"kw:k=2\", \"trace\": \"yes\"}",
    );
    assert_eq!(bad.status, 400);

    server.shutdown(); // flush + release the store
    let contents = kw_results::store::load_path(&store).unwrap();
    assert_eq!(contents.records.len(), 1, "one record despite two solves");
    assert_eq!(contents.traces.len(), 2, "every traced solve persists");
    assert_eq!(contents.traces[0].solver, "kw:k=2");
    assert_eq!(contents.traces[0].workload, "grid(6x6)");
    assert_eq!(
        contents.traces[0].summary.structure_hash,
        contents.traces[1].summary.structure_hash
    );
    let _ = std::fs::remove_file(&store);
}
