//! Table-driven tests of the daemon's HTTP/1.1 parser: torn requests,
//! pipelining, limits, and line-ending edge cases. The parser faces raw
//! bytes from untrusted sockets, so every row here is a contract about
//! never panicking and never mis-framing.

use kw_serve::http::{
    parse_request, HttpViolation, MAX_BODY_BYTES, MAX_HEADER_BYTES, MAX_HEADER_COUNT,
};

/// What a parse attempt is expected to produce.
enum Want {
    /// A complete request: (method, path, body, consumed bytes).
    Complete(&'static str, &'static str, &'static [u8], usize),
    /// Keep reading.
    Pending,
    /// A protocol violation with this status.
    Reject(u16),
}

#[test]
fn parser_table() {
    let cases: Vec<(&str, Vec<u8>, Want)> = vec![
        (
            "minimal GET",
            b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(),
            Want::Complete("GET", "/healthz", b"", 25),
        ),
        (
            "POST with body",
            b"POST /solve HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd".to_vec(),
            Want::Complete("POST", "/solve", b"abcd", 47),
        ),
        (
            "query string is not part of the path",
            b"GET /metrics?debug=1 HTTP/1.1\r\n\r\n".to_vec(),
            Want::Complete("GET", "/metrics", b"", 33),
        ),
        (
            "HTTP/1.0 accepted",
            b"GET / HTTP/1.0\r\n\r\n".to_vec(),
            Want::Complete("GET", "/", b"", 18),
        ),
        // --- torn requests: every truncation is Pending, never an error ---
        ("empty buffer", b"".to_vec(), Want::Pending),
        ("torn request line", b"POST /sol".to_vec(), Want::Pending),
        (
            "torn headers",
            b"POST /solve HTTP/1.1\r\nContent-".to_vec(),
            Want::Pending,
        ),
        (
            "headers complete, body torn",
            b"POST /solve HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec(),
            Want::Pending,
        ),
        (
            "body missing entirely",
            b"POST /solve HTTP/1.1\r\nContent-Length: 1\r\n\r\n".to_vec(),
            Want::Pending,
        ),
        // --- limits ---
        (
            "oversized headers",
            {
                let mut b = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
                b.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES));
                b
            },
            Want::Reject(431),
        ),
        (
            "too many header fields",
            {
                let mut b = b"GET / HTTP/1.1\r\n".to_vec();
                for i in 0..=MAX_HEADER_COUNT {
                    b.extend(format!("X-H{i}: v\r\n").into_bytes());
                }
                b.extend(b"\r\n");
                b
            },
            Want::Reject(431),
        ),
        (
            "declared body too large",
            format!(
                "POST /solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .into_bytes(),
            Want::Reject(413),
        ),
        // --- framing hazards ---
        (
            "chunked transfer encoding",
            b"POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            Want::Reject(411),
        ),
        (
            "any transfer encoding",
            b"POST /solve HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n".to_vec(),
            Want::Reject(411),
        ),
        (
            "conflicting content lengths",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx".to_vec(),
            Want::Reject(400),
        ),
        (
            "negative content length",
            b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "non-numeric content length",
            b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        // --- request line and header syntax ---
        (
            "missing version",
            b"GET /\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "unsupported version",
            b"GET / HTTP/2\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "lowercase method",
            b"get / HTTP/1.1\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "target without slash",
            b"GET healthz HTTP/1.1\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "header without colon",
            b"GET / HTTP/1.1\r\nWeird\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "space inside header name",
            b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "obsolete line folding",
            b"GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "non-UTF-8 header bytes",
            b"GET / HTTP/1.1\r\nX: \xff\xfe\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        // --- CRLF edges ---
        // A bare-LF request never presents a \r\n\r\n terminator, so it
        // reads as an (eventually oversized) torn request, not a parse.
        (
            "bare LF line endings stay pending",
            b"GET / HTTP/1.1\n\n".to_vec(),
            Want::Pending,
        ),
        (
            "bare CR smuggled into a header line",
            b"GET / HTTP/1.1\r\nA: b\rX: y\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
        (
            "bare LF smuggled into a header line",
            b"GET / HTTP/1.1\r\nA: b\nX: y\r\n\r\n".to_vec(),
            Want::Reject(400),
        ),
    ];

    for (name, bytes, want) in cases {
        let got = parse_request(&bytes);
        match want {
            Want::Complete(method, path, body, consumed) => {
                let (req, used) = got
                    .unwrap_or_else(|e| panic!("{name}: unexpected violation {e}"))
                    .unwrap_or_else(|| panic!("{name}: unexpectedly pending"));
                assert_eq!(req.method, method, "{name}: method");
                assert_eq!(req.path(), path, "{name}: path");
                assert_eq!(req.body, body, "{name}: body");
                assert_eq!(used, consumed, "{name}: consumed bytes");
            }
            Want::Pending => {
                assert!(
                    matches!(got, Ok(None)),
                    "{name}: wanted pending, got {got:?}"
                );
            }
            Want::Reject(status) => {
                let violation = match got {
                    Err(v) => v,
                    other => panic!("{name}: wanted a violation, got {other:?}"),
                };
                assert_eq!(violation.status(), status, "{name}: status for {violation}");
            }
        }
    }
}

/// Feeding a request byte by byte must go Pending → Pending → ... →
/// Complete without ever erroring: the incremental contract.
#[test]
fn byte_by_byte_arrival_parses_exactly_once() {
    let wire = b"POST /solve HTTP/1.1\r\nContent-Length: 2\r\nConnection: close\r\n\r\nhi";
    for cut in 0..wire.len() {
        match parse_request(&wire[..cut]) {
            Ok(None) => {}
            other => panic!("prefix of {cut} bytes must be pending, got {other:?}"),
        }
    }
    let (req, consumed) = parse_request(wire).unwrap().unwrap();
    assert_eq!(consumed, wire.len());
    assert_eq!(req.body, b"hi");
    assert!(req.wants_close());
}

/// Two pipelined requests in one buffer: the first parse consumes
/// exactly the first request, and re-parsing the remainder yields the
/// second. This is the loop the daemon's connection handler runs.
#[test]
fn pipelined_keep_alive_requests_split_cleanly() {
    let first = b"POST /solve HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".to_vec();
    let second = b"GET /metrics HTTP/1.1\r\n\r\n".to_vec();
    let mut wire = first.clone();
    wire.extend_from_slice(&second);

    let (req1, consumed1) = parse_request(&wire).unwrap().unwrap();
    assert_eq!(req1.method, "POST");
    assert_eq!(req1.body, b"abc");
    assert_eq!(consumed1, first.len());
    assert!(!req1.wants_close(), "HTTP/1.1 defaults to keep-alive");

    let rest = &wire[consumed1..];
    let (req2, consumed2) = parse_request(rest).unwrap().unwrap();
    assert_eq!(req2.method, "GET");
    assert_eq!(req2.path(), "/metrics");
    assert_eq!(consumed2, rest.len());
}

/// Header lookup is case-insensitive and `wants_close` honors both the
/// explicit header and the HTTP/1.0 default.
#[test]
fn header_semantics() {
    let (req, _) = parse_request(b"GET / HTTP/1.1\r\nX-Mixed-CASE: yes\r\n\r\n")
        .unwrap()
        .unwrap();
    assert_eq!(req.header("x-mixed-case"), Some("yes"));
    assert_eq!(req.header("X-MIXED-CASE"), Some("yes"));
    assert_eq!(req.header("absent"), None);
    assert!(!req.wants_close());

    let (req10, _) = parse_request(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
    assert!(req10.wants_close(), "HTTP/1.0 defaults to close");
    let (req10ka, _) = parse_request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        .unwrap()
        .unwrap();
    assert!(!req10ka.wants_close());
}

/// Random byte noise must never panic the parser (each outcome is fine;
/// crashing is not). Deterministic xorshift so failures reproduce.
#[test]
fn byte_noise_never_panics() {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..2_000 {
        let len = (next() % 200) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        let _ = parse_request(&bytes);
        // Prefixing noise with a plausible request line exercises the
        // header paths instead of failing at the request line.
        let mut framed = b"POST /solve HTTP/1.1\r\n".to_vec();
        framed.extend_from_slice(&bytes);
        let _ = parse_request(&framed);
    }
}

#[test]
fn violation_statuses_are_stable() {
    assert_eq!(HttpViolation::HeadersTooLarge.status(), 431);
    assert_eq!(HttpViolation::BodyTooLarge.status(), 413);
    assert_eq!(HttpViolation::ChunkedUnsupported.status(), 411);
    assert_eq!(HttpViolation::Malformed("x").status(), 400);
}
