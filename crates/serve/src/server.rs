//! The daemon runtime: a bounded worker pool over a `TcpListener`.
//!
//! Threading model, chosen for a std-only binary:
//!
//! * one **accept thread** pushes `(connection, accepted-at)` pairs into
//!   a bounded [`std::sync::mpsc::sync_channel`];
//! * `workers` **worker threads** share the receiving end behind a
//!   mutex and run connections to completion (keep-alive included);
//! * when the queue is full, the accept thread answers `503` with
//!   `Retry-After` *inline* and hangs up — load is shed at the door
//!   instead of queueing unboundedly (the bounded channel **is** the
//!   backpressure).
//!
//! Graceful shutdown ([`Server::shutdown`]) flips a flag, wakes the
//! accept thread with a self-connection, drops the sender so workers
//! observe channel disconnect *after draining queued connections*, and
//! joins everything. In-flight requests finish; new ones are refused.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{parse_request, Response, MAX_BODY_BYTES, MAX_HEADER_BYTES};
use crate::service::{ServeError, SolveService};

/// How the daemon listens and limits itself.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, smoke runs).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted-but-unclaimed connections to hold before shedding 503s.
    pub queue_depth: usize,
    /// Run store path; `None` disables persistence.
    pub store: Option<PathBuf>,
    /// Per-request wall-clock budget, measured from accept (queue wait
    /// counts — a request that waited out its deadline is shed, not
    /// served late).
    pub deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            store: None,
            deadline: Duration::from_secs(10),
        }
    }
}

/// Seconds suggested to shed clients via `Retry-After`.
const RETRY_AFTER_SECS: u32 = 1;

/// Socket read timeout; also the cadence at which connection loops
/// re-check the shutdown flag and request deadline.
const READ_TICK: Duration = Duration::from_millis(200);

/// How long an idle keep-alive connection is held open.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

struct Shared {
    service: SolveService,
    shutting_down: AtomicBool,
    deadline: Duration,
}

/// A running daemon; dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    sender: Option<SyncSender<(TcpStream, Instant)>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, warms the cache from the store (if any), and starts the
    /// accept and worker threads. Returns once the daemon is serving.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        let service = SolveService::new(config.store.as_deref())?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            shutting_down: AtomicBool::new(false),
            deadline: config.deadline,
        });

        let workers = config.workers.max(1);
        let (sender, receiver) = std::sync::mpsc::sync_channel(config.queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("kw-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &receiver))
                    .expect("spawn worker thread")
            })
            .collect();

        let accept = {
            let shared = Arc::clone(&shared);
            let sender = sender.clone();
            std::thread::Builder::new()
                .name("kw-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &sender))
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            shared,
            sender: Some(sender),
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The request handler, for inspecting cache and telemetry state.
    pub fn service(&self) -> &SolveService {
        &self.shared.service
    }

    /// Whether a client has POSTed `/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.service.shutdown_requested()
    }

    /// Blocks until a client POSTs `/shutdown` (the std-only stand-in
    /// for signal handling), polling at the read-tick cadence.
    pub fn wait_for_shutdown_request(&self) {
        while !self.shutdown_requested() {
            std::thread::sleep(READ_TICK);
        }
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// connections, join all threads.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // The accept thread is blocked in `accept()`; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // With the accept thread gone, dropping the last sender
        // disconnects the channel; workers drain what was queued, then
        // see `Err(Disconnected)` and exit.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared, sender: &SyncSender<(TcpStream, Instant)>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return; // the wake-up connection (or a straggler) — refuse and stop
        }
        match sender.try_send((stream, Instant::now())) {
            Ok(()) => {}
            Err(TrySendError::Full((stream, accepted))) => shed(shared, stream, accepted),
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Answers a 503 with `Retry-After` directly from the accept thread.
/// Deliberately cheap: one write, no parsing, connection closed.
fn shed(shared: &Shared, mut stream: TcpStream, accepted: Instant) {
    let mut resp = Response::error(503, "server is at capacity; retry shortly");
    resp.retry_after = Some(RETRY_AFTER_SECS);
    resp.close = true;
    let _ = stream.set_write_timeout(Some(READ_TICK));
    let _ = stream.write_all(&resp.render());
    shared
        .service
        .telemetry
        .observe_shed(accepted.elapsed().as_micros() as u64);
}

fn worker_loop(shared: &Shared, receiver: &Arc<Mutex<Receiver<(TcpStream, Instant)>>>) {
    loop {
        // Hold the mutex only while dequeuing, never while serving. A
        // poisoned lock (a sibling worker panicked mid-recv) still
        // guards a consistent receiver: recover and keep serving.
        let next = receiver
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv();
        let (stream, accepted) = match next {
            Ok(pair) => pair,
            Err(_) => return, // channel disconnected: drained, shut down
        };
        // A connection that waited out its whole deadline in the queue
        // is shed late rather than served late.
        if accepted.elapsed() >= shared.deadline {
            shed(shared, stream, accepted);
            continue;
        }
        handle_connection(shared, stream, accepted);
    }
}

/// Serves one connection until close, keep-alive timeout, deadline, a
/// protocol violation, or daemon shutdown.
fn handle_connection(shared: &Shared, mut stream: TcpStream, accepted: Instant) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err()
        || stream.set_write_timeout(Some(shared.deadline)).is_err()
    {
        return;
    }
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    // Deadline for the request currently being read/served; reset after
    // each response so keep-alive connections get a fresh budget.
    let mut request_started = accepted;
    let mut idle_since = Instant::now();
    let mut chunk = [0u8; 4096];
    loop {
        // Parse whatever has arrived; serve every complete pipelined
        // request in the buffer before reading more.
        loop {
            match parse_request(&buf) {
                Ok(Some((request, consumed))) => {
                    buf.drain(..consumed);
                    let guard = shared.service.telemetry.enter();
                    let mut response = shared.service.handle(&request);
                    if request.wants_close() || shared.shutting_down.load(Ordering::SeqCst) {
                        response.close = true;
                    }
                    let ok = stream.write_all(&response.render()).is_ok();
                    drop(guard);
                    shared.service.telemetry.observe(
                        response.status,
                        request_started.elapsed().as_micros() as u64,
                    );
                    if !ok || response.close {
                        return;
                    }
                    request_started = Instant::now();
                    idle_since = Instant::now();
                }
                Ok(None) => break, // need more bytes
                Err(violation) => {
                    let response = Response::for_violation(&violation);
                    let _ = stream.write_all(&response.render());
                    shared.service.telemetry.observe(
                        response.status,
                        request_started.elapsed().as_micros() as u64,
                    );
                    return;
                }
            }
        }

        if shared.shutting_down.load(Ordering::SeqCst) && buf.is_empty() {
            return; // between requests during a drain: close quietly
        }
        let mid_request = !buf.is_empty();
        if mid_request && request_started.elapsed() >= shared.deadline {
            let mut response = Response::error(408, "request deadline exceeded");
            response.close = true;
            let _ = stream.write_all(&response.render());
            shared
                .service
                .telemetry
                .observe(408, request_started.elapsed().as_micros() as u64);
            return;
        }
        if !mid_request && idle_since.elapsed() >= KEEP_ALIVE_IDLE {
            return; // idle keep-alive expired
        }

        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if buf.is_empty() {
                    // First bytes of a new request: the deadline clock
                    // starts now, not when the connection went idle.
                    request_started = Instant::now();
                }
                buf.extend_from_slice(&chunk[..n]);
                // Defense in depth: parser limits make oversized inputs
                // fail fast, so the buffer stays near one request's size.
                debug_assert!(buf.len() <= MAX_HEADER_BYTES + MAX_BODY_BYTES + chunk.len());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Read tick: loop around to re-check shutdown/deadline.
            }
            Err(_) => return,
        }
    }
}
