//! Load generation against a running daemon, plus the blocking HTTP
//! client it (and the tests) use.
//!
//! [`run_load`] replays a named request mix (`kw_bench::mix`) at a
//! target concurrency and reports throughput and latency percentiles —
//! computed with the same [`kw_results::Percentiles`] rollup the sweep
//! pipeline uses, so a load report and a `/metrics` scrape speak the
//! same nearest-rank language. [`append_bench_records`] persists the
//! numbers under the `KW_BENCH_STORE` convention so `regress` gates
//! serving latency exactly like micro-benchmarks.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use kw_bench::mix::MixEntry;
use kw_results::store::{BenchRecord, RunStore, StoreError};
use kw_results::Percentiles;

/// A response as the minimal client sees it.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

/// Sends one HTTP/1.1 request over a fresh connection and reads the
/// response. Blocking, `Content-Length`-framed only — the counterpart
/// of the daemon's deliberately small server side.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: kw-serve\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;

    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(resp) = parse_client_response(&buf)? {
            return Ok(resp);
        }
        if Instant::now() >= deadline {
            return Err(std::io::Error::new(
                ErrorKind::TimedOut,
                "response incomplete before timeout",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return parse_client_response(&buf)?.ok_or_else(|| {
                    std::io::Error::new(ErrorKind::UnexpectedEof, "connection closed mid-response")
                })
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) => return Err(e),
        }
    }
}

fn parse_client_response(buf: &[u8]) -> std::io::Result<Option<ClientResponse>> {
    let head_end = match buf.windows(4).position(|w| w == b"\r\n\r\n") {
        Some(i) => i,
        None => return Ok(None),
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().map_err(|_| {
                    std::io::Error::new(ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    Ok(Some(ClientResponse {
        status,
        body: buf[body_start..body_start + content_length].to_vec(),
    }))
}

/// What one load run produced.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Mix name the run replayed.
    pub mix: String,
    /// Worker threads that issued requests.
    pub concurrency: usize,
    /// Requests that completed with any HTTP status.
    pub completed: usize,
    /// Responses per status class.
    pub ok_2xx: usize,
    /// 4xx responses (spec errors; none expected from a valid mix).
    pub err_4xx: usize,
    /// 5xx responses (including 503 sheds).
    pub err_5xx: usize,
    /// Transport-level failures (connect/read errors, timeouts).
    pub transport_errors: usize,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Latency rollup over completed requests, in milliseconds.
    pub latency_ms: Percentiles,
}

impl LoadReport {
    /// Completed requests per second over the run's wall clock.
    pub fn requests_per_second(&self) -> f64 {
        if self.wall.as_secs_f64() <= 0.0 {
            return 0.0;
        }
        self.completed as f64 / self.wall.as_secs_f64()
    }

    /// Renders the human-readable report (`kw-load`'s stdout).
    pub fn render(&self) -> String {
        format!(
            "mix={} concurrency={} completed={} ({} 2xx, {} 4xx, {} 5xx, {} transport) \
             in {:.2}s = {:.1} req/s\nlatency ms: p50={:.3} p95={:.3} p99={:.3} \
             mean={:.3} max={:.3}",
            self.mix,
            self.concurrency,
            self.completed,
            self.ok_2xx,
            self.err_4xx,
            self.err_5xx,
            self.transport_errors,
            self.wall.as_secs_f64(),
            self.requests_per_second(),
            self.latency_ms.p50,
            self.latency_ms.p95,
            self.latency_ms.p99,
            self.latency_ms.mean,
            self.latency_ms.max,
        )
    }
}

/// Replays `requests` solve calls drawn round-robin from `mix_entries`
/// across `concurrency` threads, each over a fresh connection.
pub fn run_load(
    addr: SocketAddr,
    mix_name: &str,
    mix_entries: &[MixEntry],
    concurrency: usize,
    requests: usize,
    timeout: Duration,
) -> LoadReport {
    // Status and latency (ms) of a completed request; Err is transport.
    type Completion = Result<(u16, f64), ()>;
    let concurrency = concurrency.max(1);
    let next = Arc::new(AtomicUsize::new(0));
    let results: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency {
            let next = Arc::clone(&next);
            let results = Arc::clone(&results);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests {
                    return;
                }
                // `get` + `max(1)` keeps an empty mix a no-op run
                // instead of a modulo-by-zero panic.
                let Some(entry) = mix_entries.get(i % mix_entries.len().max(1)) else {
                    return;
                };
                let chaos = if entry.chaos.is_empty() {
                    String::new()
                } else {
                    format!(", \"chaos\": {}", json_string(&entry.chaos))
                };
                // `threads: 1` is the daemon's default — omitting it
                // keeps 1-thread bodies byte-compatible with old mixes.
                let threads = if entry.threads == 1 {
                    String::new()
                } else {
                    format!(", \"threads\": {}", entry.threads)
                };
                let body = format!(
                    "{{\"workload\": {}, \"solver\": {}, \"seed\": {}{chaos}{threads}}}",
                    json_string(&entry.workload),
                    json_string(&entry.solver),
                    entry.seed
                );
                let sent = Instant::now();
                let outcome = http_request(addr, "POST", "/solve", body.as_bytes(), timeout)
                    .map(|resp| (resp.status, sent.elapsed().as_secs_f64() * 1e3))
                    .map_err(|_| ());
                results
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(outcome);
            });
        }
    });
    let wall = start.elapsed();

    // `thread::scope` joined every worker above, so the Arc is unique;
    // the fallback still drains the data instead of panicking.
    let results = match Arc::try_unwrap(results) {
        Ok(mutex) => mutex.into_inner().unwrap_or_else(PoisonError::into_inner),
        Err(shared) => shared
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .split_off(0),
    };
    let mut latencies = Vec::new();
    let (mut ok_2xx, mut err_4xx, mut err_5xx, mut transport_errors) = (0, 0, 0, 0);
    for r in &results {
        match r {
            Ok((status, ms)) => {
                latencies.push(*ms);
                match status {
                    200..=299 => ok_2xx += 1,
                    400..=499 => err_4xx += 1,
                    _ => err_5xx += 1,
                }
            }
            Err(()) => transport_errors += 1,
        }
    }
    LoadReport {
        mix: mix_name.to_string(),
        concurrency,
        completed: latencies.len(),
        ok_2xx,
        err_4xx,
        err_5xx,
        transport_errors,
        wall,
        latency_ms: Percentiles::from_samples(&latencies),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Appends a load report to the bench store at `path` under the
/// `KW_BENCH_STORE` convention: bench `serve_load`, ids
/// `<mix>/c<concurrency>/{p50,p95,p99,mean}`, values in milliseconds
/// (lower is better, exactly what `regress` expects).
pub fn append_bench_records(path: &std::path::Path, report: &LoadReport) -> Result<(), StoreError> {
    let store = RunStore::open(path)?;
    let prefix = format!("{}/c{}", report.mix, report.concurrency);
    for (stat, value) in [
        ("p50", report.latency_ms.p50),
        ("p95", report.latency_ms.p95),
        ("p99", report.latency_ms.p99),
        ("mean", report.latency_ms.mean),
    ] {
        store.append_bench(&BenchRecord {
            bench: "serve_load".to_string(),
            id: format!("{prefix}/{stat}"),
            best_ms: value,
        })?;
    }
    Ok(())
}
