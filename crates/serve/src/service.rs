//! Request routing and the solve path: specs in, memoized answers out.
//!
//! A [`SolveService`] owns everything a request needs — the solver
//! registry (core + baselines, the same table every sweep uses), the
//! [`ExperimentCache`] answers memoize into, an optional [`RunStore`]
//! that persists every fresh answer, and the [`Telemetry`] counters.
//! Handlers are pure `&self` functions so one service instance is shared
//! across all worker threads.
//!
//! The persistence contract mirrors `SweepSession`: on startup the store
//! replays into the cache (`warmed` answers), so a restarted daemon
//! re-serves everything it ever solved without re-solving; every cache
//! miss appends one `record` line. A failed append degrades to
//! metrics-only (the answer is still served) — a full disk must not turn
//! a compute service into an outage.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use kw_bench::workloads::Workload;
use kw_core::solver::{
    traced_solve, ExperimentCache, RunOutcome, RunRecord, SolveContext, SolverRegistry,
};
use kw_results::json::Json;
use kw_results::store::{RunStore, StoreError, TraceRecord};
use kw_sim::ChaosPlan;
use kw_trace::TraceSummary;

use crate::http::{Request, Response};
use crate::telemetry::Telemetry;

/// Errors starting a service (never per-request; requests map to 4xx/5xx
/// responses instead).
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// The run store could not be opened (including another writer
    /// holding its lock).
    Store(StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O failed: {e}"),
            ServeError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Upper bound on the per-request `"threads"` knob: one request must not
/// conscript an unbounded worker pool out of a shared daemon.
pub const MAX_THREADS: usize = 64;

/// The daemon's request handler: registry + cache + store + telemetry.
pub struct SolveService {
    registry: SolverRegistry,
    cache: Arc<ExperimentCache>,
    store: Option<Mutex<RunStore>>,
    /// `(workload label, seed) → (n, Δ)`, learned from store replay and
    /// live solves. Lets cached answers report graph shape without
    /// rebuilding (or even holding) the graph.
    shapes: Mutex<HashMap<(String, u64), (usize, usize)>>,
    warmed: usize,
    shutdown_requested: AtomicBool,
    /// Request counters and latency histogram.
    pub telemetry: Telemetry,
}

impl std::fmt::Debug for SolveService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveService")
            .field("warmed", &self.warmed)
            .field("persistent", &self.store.is_some())
            .finish_non_exhaustive()
    }
}

impl SolveService {
    /// Creates a service, opening (and replaying) the store at
    /// `store_path` if given. With `None` the daemon is memory-only:
    /// still cached, nothing survives a restart.
    pub fn new(store_path: Option<&Path>) -> Result<Self, ServeError> {
        let registry = kw_baselines::registry();
        let cache = ExperimentCache::new();
        let mut shapes = HashMap::new();
        let (store, warmed) = match store_path {
            Some(path) => {
                let store = RunStore::open(path)?;
                let contents = store.load()?;
                for r in &contents.records {
                    cache.insert_outcome(
                        &r.solver,
                        &r.workload,
                        r.seed,
                        &r.chaos,
                        r.threads,
                        r.outcome,
                    );
                    shapes.insert((r.workload.clone(), r.seed), (r.n, r.max_degree));
                }
                // Count *distinct* warmed answers: a store written under
                // racing clients may carry duplicate lines for one cell.
                (Some(Mutex::new(store)), cache.outcome_count())
            }
            None => (None, 0),
        };
        Ok(SolveService {
            registry,
            cache,
            store,
            shapes: Mutex::new(shapes),
            warmed,
            shutdown_requested: AtomicBool::new(false),
            telemetry: Telemetry::default(),
        })
    }

    /// Answers replayed from the store at startup.
    pub fn warmed(&self) -> usize {
        self.warmed
    }

    /// The shared answer cache (hit/miss counters feed `/metrics`).
    pub fn cache(&self) -> &ExperimentCache {
        &self.cache
    }

    /// Whether `POST /shutdown` has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Routes one parsed request.
    pub fn handle(&self, req: &Request) -> Response {
        match req.path() {
            "/healthz" => match req.method.as_str() {
                "GET" | "HEAD" => Response::text(200, "ok\n"),
                _ => Response::error(405, "use GET /healthz"),
            },
            "/metrics" => match req.method.as_str() {
                "GET" => {
                    let mut resp = Response::text(
                        200,
                        self.telemetry.render_prometheus(
                            self.cache.hits(),
                            self.cache.misses(),
                            self.warmed as u64,
                        ),
                    );
                    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
                    resp
                }
                _ => Response::error(405, "use GET /metrics"),
            },
            "/solve" => match req.method.as_str() {
                "POST" => self.solve(&req.body),
                _ => Response::error(405, "use POST /solve"),
            },
            "/shutdown" => match req.method.as_str() {
                "POST" => {
                    self.shutdown_requested.store(true, Ordering::SeqCst);
                    Response::text(200, "draining\n")
                }
                _ => Response::error(405, "use POST /shutdown"),
            },
            other => Response::error(
                404,
                format!(
                    "unknown path {other:?}; endpoints: POST /solve, GET /healthz, \
                     GET /metrics, POST /shutdown"
                ),
            ),
        }
    }

    /// `POST /solve`: body `{"workload": spec, "solver": spec, "seed"?: n,
    /// "chaos"?: clause, "threads"?: k, "trace"?: bool}`. The chaos
    /// clause uses the sweep grammar (an optional `chaos:` prefix is
    /// accepted), e.g. `"drop=0.1,burst=r3-5@0.9,crash=7@r2,byz=3"`;
    /// answers are cached and persisted under the canonical spec, so a
    /// daemon and a sweep sharing a store key chaos cells identically.
    /// `"threads"` picks the engine worker count (default 1, capped at
    /// [`MAX_THREADS`]); outcomes are bit-identical across thread counts
    /// but wall times are not, so the normalized count is part of the
    /// cache and store key exactly as in sweep cells.
    fn solve(&self, body: &[u8]) -> Response {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "body is not UTF-8"),
        };
        let json = match Json::parse(text) {
            Ok(v) => v,
            Err(e) => return Response::error(400, format!("body is not JSON: {e}")),
        };
        let Some(workload_spec) = json.get("workload").and_then(Json::as_str) else {
            return Response::error(400, "missing string field \"workload\"");
        };
        let Some(solver_spec) = json.get("solver").and_then(Json::as_str) else {
            return Response::error(400, "missing string field \"solver\"");
        };
        let seed = match json.get("seed") {
            None => 0,
            Some(v) => match v.as_u64() {
                Some(s) => s,
                None => return Response::error(400, "\"seed\" must be an unsigned integer"),
            },
        };
        let faults = match json.get("chaos") {
            None => ChaosPlan::reliable(),
            Some(v) => match v.as_str() {
                Some(clause) => match ChaosPlan::parse(clause) {
                    Ok(plan) => plan,
                    Err(e) => return Response::error(400, format!("bad \"chaos\" clause: {e}")),
                },
                None => return Response::error(400, "\"chaos\" must be a string clause"),
            },
        };
        if !faults.is_reliable() {
            self.telemetry.count_chaos_request();
        }
        // Normalize before anything keys on it: absent and `1` are the
        // same sequential run and must share one cache/store cell.
        let threads = match json.get("threads") {
            None => 1,
            Some(v) => match v.as_u64() {
                Some(t @ 1..) if t <= MAX_THREADS as u64 => t as usize,
                Some(_) => {
                    return Response::error(
                        400,
                        format!("\"threads\" must be in 1..={MAX_THREADS}"),
                    )
                }
                None => return Response::error(400, "\"threads\" must be an unsigned integer"),
            },
        };
        // `"trace": true` profiles the solve with the span plane and
        // returns the rollup inline. A traced request always computes —
        // a cached outcome has no trace to attach — so it doubles as a
        // "measure this cell right now" escape hatch.
        let want_trace = match json.get("trace") {
            None => false,
            Some(v) => match v.as_bool() {
                Some(b) => b,
                None => return Response::error(400, "\"trace\" must be a boolean"),
            },
        };

        // Untrusted spec strings go through the same grammars as CLI
        // sweeps; parse failures are the client's problem, not a 500.
        let workload = match Workload::parse(workload_spec) {
            Ok(w) => w,
            Err(e) => return Response::error(400, e.to_string()),
        };
        let solver = match self.registry.build(solver_spec) {
            Ok(s) => s,
            Err(e) => return Response::error(400, e.to_string()),
        };
        let spec = solver.spec();
        let label = workload.label();
        // Certificates forced on, exactly like `ExperimentRunner` cells:
        // the response's `dominates`/`ratio` fields depend on them, and
        // a daemon must stay cache-compatible with sweep stores.
        let ctx = SolveContext {
            check_certificates: true,
            faults,
            trace: want_trace,
            threads,
            ..SolveContext::seeded(seed)
        };
        let chaos = ctx.faults.spec();

        let was_cached = self.cache.outcome(&spec, &label, seed, &ctx);
        if let Some(outcome) = was_cached {
            if !want_trace {
                let shape = self
                    .shapes
                    .lock()
                    // The map is written with plain inserts that cannot
                    // panic mid-update, so a poisoned lock still guards
                    // consistent data: recover instead of unwrapping.
                    .unwrap_or_else(PoisonError::into_inner)
                    .get(&(label.clone(), seed))
                    .copied();
                return self
                    .render_outcome(&spec, &label, seed, threads, shape, outcome, true, None);
            }
        }

        // Miss: materialize the graph (memoized per (label, seed)) and
        // solve. The fallible build runs *outside* the cache so a bad
        // instance path cannot poison the graph memo.
        let graph = match self.cache.cached_graph(&label, seed) {
            Some(g) => g,
            None => match workload.try_build(seed) {
                Ok(g) => self.cache.graph(&label, seed, || g),
                Err(e) => return Response::error(400, e.to_string()),
            },
        };
        let start = Instant::now();
        let report = match catch_unwind(AssertUnwindSafe(|| traced_solve(&*solver, &graph, &ctx))) {
            Ok(Ok(report)) => report,
            Ok(Err(e)) => return Response::error(422, e.to_string()),
            Err(panic) => {
                self.telemetry.count_panic();
                let reason = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".to_string());
                let run_id = if chaos.is_empty() {
                    format!("{spec} on {label} (seed {seed})")
                } else {
                    format!("{spec} on {label} (seed {seed}, chaos {chaos})")
                };
                return Response::error(500, format!("solver panicked: {run_id}: {reason}"));
            }
        };
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if let Some(summary) = &report.trace {
            self.telemetry.observe_trace(summary);
        }
        let Some(cert) = report.certificate.as_ref() else {
            // `traced_solve` forces certificates on; a report without one
            // is a solver-contract bug, and the daemon answers 500 rather
            // than killing the worker thread.
            return Response::error(500, "solver returned no certificate");
        };
        let outcome = RunOutcome {
            dominates: cert.dominates,
            size: report.size() as f64,
            rounds: report.rounds() as f64,
            messages: report.messages() as f64,
            bits: report.metrics.bits as f64,
            ratio_vs_lemma1: cert.ratio_vs_lemma1,
            wall_ms,
        };
        let shape = (graph.len(), graph.max_degree());
        self.cache
            .insert_outcome(&spec, &label, seed, &chaos, threads, outcome);
        self.shapes
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((label.clone(), seed), shape);
        if let Some(store) = &self.store {
            // A traced re-solve of an already-cached cell appends only
            // its trace line — duplicating the record would double-weight
            // the cell in summaries built from this store.
            if was_cached.is_none() {
                let record = RunRecord {
                    solver: spec.clone(),
                    workload: label.clone(),
                    n: shape.0,
                    max_degree: shape.1,
                    seed,
                    chaos: chaos.clone(),
                    threads,
                    outcome,
                };
                let store = store.lock().unwrap_or_else(PoisonError::into_inner);
                if store.append_record(&record).is_err() {
                    self.telemetry.count_store_error();
                }
            }
            if let Some(summary) = &report.trace {
                let trace = TraceRecord {
                    solver: spec.clone(),
                    workload: label.clone(),
                    seed,
                    chaos: chaos.clone(),
                    summary: summary.clone(),
                };
                let store = store.lock().unwrap_or_else(PoisonError::into_inner);
                if store.append_trace(&trace).is_err() {
                    self.telemetry.count_store_error();
                }
            }
        }
        self.render_outcome(
            &spec,
            &label,
            seed,
            threads,
            Some(shape),
            outcome,
            false,
            report.trace.as_ref(),
        )
    }

    /// The inline `"trace"` object of a traced solve's response: the
    /// rollup without the per-round sample series (which can run to
    /// thousands of rounds — it lives in the store's trace line, not in
    /// every HTTP response).
    fn trace_json(summary: &TraceSummary) -> Json {
        Json::obj([
            ("threads", Json::UInt(summary.threads as u64)),
            ("rounds", Json::UInt(summary.rounds)),
            ("total_us", Json::UInt(summary.total_us)),
            ("barrier_us", Json::UInt(summary.barrier_us)),
            ("imbalance", Json::num(summary.imbalance)),
            ("structure_hash", Json::UInt(summary.structure_hash)),
            (
                "phase_us",
                Json::Obj(
                    summary
                        .phase_us
                        .iter()
                        .map(|(label, us)| (label.clone(), Json::UInt(*us)))
                        .collect(),
                ),
            ),
            ("samples", Json::UInt(summary.samples.len() as u64)),
        ])
    }

    #[allow(clippy::too_many_arguments)]
    fn render_outcome(
        &self,
        solver: &str,
        workload: &str,
        seed: u64,
        threads: usize,
        shape: Option<(usize, usize)>,
        outcome: RunOutcome,
        cached: bool,
        trace: Option<&TraceSummary>,
    ) -> Response {
        let (n, max_degree) = shape.unwrap_or((0, 0));
        let mut fields = vec![
            ("solver".to_string(), Json::Str(solver.to_string())),
            ("workload".to_string(), Json::Str(workload.to_string())),
            ("seed".to_string(), Json::UInt(seed)),
            ("threads".to_string(), Json::UInt(threads as u64)),
            ("n".to_string(), Json::UInt(n as u64)),
            ("max_degree".to_string(), Json::UInt(max_degree as u64)),
            ("cached".to_string(), Json::Bool(cached)),
            ("dominates".to_string(), Json::Bool(outcome.dominates)),
            ("size".to_string(), Json::num(outcome.size)),
            ("rounds".to_string(), Json::num(outcome.rounds)),
            ("messages".to_string(), Json::num(outcome.messages)),
            ("bits".to_string(), Json::num(outcome.bits)),
            (
                "ratio_vs_lemma1".to_string(),
                Json::num(outcome.ratio_vs_lemma1),
            ),
            ("wall_ms".to_string(), Json::num(outcome.wall_ms)),
        ];
        if let Some(summary) = trace {
            fields.push(("trace".to_string(), Self::trace_json(summary)));
        }
        Response::json(200, &Json::Obj(fields))
    }
}
