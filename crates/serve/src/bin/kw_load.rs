//! `kw-load` — load generator for a running `kw-serve`.
//!
//! ```text
//! kw-load --addr HOST:PORT [--mix smoke|small|chaos|scaling] [--concurrency N]
//!         [--requests N] [--timeout-ms N]
//! ```
//!
//! Replays the named request mix at the target concurrency, prints
//! req/s and latency percentiles, and — when `KW_BENCH_STORE` is set —
//! appends the percentiles as bench lines so `regress` can gate serving
//! latency against a stored baseline.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::time::Duration;

use kw_bench::mix;
use kw_serve::{append_bench_records, run_load};

fn usage() -> ! {
    eprintln!(
        "usage: kw-load --addr HOST:PORT [--mix {}] [--concurrency N] \
         [--requests N] [--timeout-ms N]",
        mix::MIX_NAMES.join("|")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut mix_name = "smoke".to_string();
    let mut concurrency = 4usize;
    let mut requests = 64usize;
    let mut timeout = Duration::from_secs(30);
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("kw-load: {flag} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--mix" => mix_name = value("--mix"),
            "--concurrency" => concurrency = parse_num(&value("--concurrency"), "--concurrency"),
            "--requests" => requests = parse_num(&value("--requests"), "--requests"),
            "--timeout-ms" => {
                timeout = Duration::from_millis(parse_num(&value("--timeout-ms"), "--timeout-ms"))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("kw-load: --addr is required");
        usage();
    };
    let addr: SocketAddr = match addr.to_socket_addrs().map(|mut a| a.next()) {
        Ok(Some(a)) => a,
        _ => {
            eprintln!("kw-load: cannot resolve {addr:?}");
            return ExitCode::FAILURE;
        }
    };
    let Some(entries) = mix::by_name(&mix_name) else {
        eprintln!(
            "kw-load: unknown mix {mix_name:?}; available: {}",
            mix::MIX_NAMES.join(", ")
        );
        return ExitCode::FAILURE;
    };

    let report = run_load(addr, &mix_name, &entries, concurrency, requests, timeout);
    println!("{}", report.render());

    if let Some(path) = std::env::var_os("KW_BENCH_STORE") {
        let path = std::path::PathBuf::from(path);
        match append_bench_records(&path, &report) {
            Ok(()) => println!("appended latency baselines to {}", path.display()),
            Err(e) => {
                eprintln!("kw-load: failed to append to bench store: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if report.transport_errors > 0 || report.completed == 0 {
        eprintln!(
            "kw-load: {} transport errors, {} completed",
            report.transport_errors, report.completed
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("kw-load: {flag} got unparseable value {text:?}");
        usage();
    })
}
