//! `kw-serve` — the solve-as-a-service daemon.
//!
//! ```text
//! kw-serve [--addr HOST:PORT] [--store PATH] [--workers N]
//!          [--queue N] [--deadline-ms N]
//! ```
//!
//! Binds, warms the answer cache from `--store` (if given), prints one
//! `listening ...` line, and serves until a client POSTs `/shutdown`,
//! then drains in-flight requests and exits 0.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use kw_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: kw-serve [--addr HOST:PORT] [--store PATH] [--workers N] \
         [--queue N] [--deadline-ms N]\n\
         \n\
         endpoints: POST /solve  GET /healthz  GET /metrics  POST /shutdown"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7341".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--store" => config.store = Some(PathBuf::from(value("--store"))),
            "--workers" => config.workers = parse_num(&value("--workers"), "--workers"),
            "--queue" => config.queue_depth = parse_num(&value("--queue"), "--queue"),
            "--deadline-ms" => {
                config.deadline =
                    Duration::from_millis(parse_num(&value("--deadline-ms"), "--deadline-ms"))
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("kw-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "listening on http://{} ({} answers warmed from store)",
        server.addr(),
        server.service().warmed()
    );
    server.wait_for_shutdown_request();
    println!("shutdown requested; draining");
    server.shutdown();
    println!("drained; bye");
    ExitCode::SUCCESS
}

fn usage_for(flag: &str) -> ! {
    eprintln!("kw-serve: {flag} needs a value");
    usage();
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("kw-serve: {flag} got unparseable value {text:?}");
        usage();
    })
}
