//! `serve_smoke` — CI end-to-end check for the serving stack.
//!
//! One process, real TCP, no fixtures:
//!
//! 1. start a daemon on an ephemeral port with a fresh run store;
//! 2. fire a `kw-load`-style burst of the smoke mix (more requests than
//!    distinct cells, so cache hits are guaranteed);
//! 3. scrape `/metrics` and assert zero 5xx and at least one cache hit;
//! 4. POST `/shutdown` and drain — the SIGTERM path;
//! 5. restart a daemon on the *same* store and assert it warmed every
//!    answer: a repeated request must report `"cached": true` without
//!    any new cache miss;
//! 6. append the load report to `KW_BENCH_STORE` (when set) so the CI
//!    job can `regress --validate` the produced baselines.
//!
//! Exits non-zero with a message on the first violated expectation.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use kw_bench::mix;
use kw_serve::{append_bench_records, http_request, run_load, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(30);

fn main() -> ExitCode {
    match smoke() {
        Ok(()) => {
            println!("serve_smoke: all checks passed");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("serve_smoke: FAILED: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn smoke() -> Result<(), String> {
    // KW_SERVE_SMOKE_STORE pins the daemon store to a known path (CI
    // schema-validates it afterwards); default is a throwaway temp file.
    let (store, keep_store) = match std::env::var_os("KW_SERVE_SMOKE_STORE") {
        Some(path) => (PathBuf::from(path), true),
        None => (
            std::env::temp_dir().join(format!("kw_serve_smoke_{}.jsonl", std::process::id())),
            false,
        ),
    };
    let _ = std::fs::remove_file(&store);
    let mix_entries = mix::smoke_mix();
    let requests = mix_entries.len() * 3; // every cell replayed, hits guaranteed

    // --- pass 1: cold daemon -------------------------------------------------
    let server = Server::start(config(&store)).map_err(|e| format!("start: {e}"))?;
    let addr = server.addr();
    println!("daemon 1 on {addr}, store {}", store.display());

    let health =
        http_request(addr, "GET", "/healthz", b"", TIMEOUT).map_err(|e| format!("healthz: {e}"))?;
    expect(health.status == 200, "healthz must answer 200")?;

    // Warm each distinct cell once, sequentially, so the later burst's
    // hit/miss arithmetic is exact (two racing cold requests for one
    // cell would otherwise both miss).
    let warm = run_load(addr, "smoke", &mix_entries, 1, mix_entries.len(), TIMEOUT);
    expect(
        warm.ok_2xx == mix_entries.len(),
        "sequential warm pass must answer 200 for every cell",
    )?;

    let report = run_load(addr, "smoke", &mix_entries, 4, requests, TIMEOUT);
    println!("{}", report.render());
    expect(report.completed == requests, "every request must complete")?;
    expect(report.err_4xx == 0, "smoke mix must produce no 4xx")?;
    expect(report.err_5xx == 0, "burst must produce no 5xx")?;
    expect(report.transport_errors == 0, "no transport errors")?;

    let metrics = scrape(addr)?;
    expect(
        metric(&metrics, "kw_serve_responses_5xx_total")? == 0.0,
        "metrics must report zero 5xx",
    )?;
    let hits_1 = metric(&metrics, "kw_serve_cache_hits_total")?;
    expect(
        hits_1 == requests as f64,
        "every burst request must be a cache hit",
    )?;
    expect(
        metric(&metrics, "kw_serve_cache_misses_total")? == mix_entries.len() as f64,
        "cold daemon must miss exactly once per distinct cell",
    )?;
    println!("pass 1 ok: {hits_1} hits over {requests} burst requests");

    // --- chaotic mix ---------------------------------------------------------
    // Same daemon, now under the chaos mix: every cell shares (solver,
    // workload, seed) and differs only by chaos clause, so correct
    // chaos-keyed caching is the only way this stays consistent.
    let chaos_entries = mix::chaos_mix();
    let chaos_requests = chaos_entries.len() * 2; // each cell replayed twice
    let chaos_report = run_load(addr, "chaos", &chaos_entries, 2, chaos_requests, TIMEOUT);
    println!("{}", chaos_report.render());
    expect(
        chaos_report.ok_2xx == chaos_requests,
        "chaos mix must answer 200 for every request",
    )?;
    let metrics = scrape(addr)?;
    let chaotic = chaos_entries.iter().filter(|e| !e.chaos.is_empty()).count();
    expect(
        metric(&metrics, "kw_serve_chaos_requests_total")? == (chaotic * 2) as f64,
        "every non-reliable request must tick the chaos counter",
    )?;
    println!("chaos mix ok: {} chaotic requests counted", chaotic * 2);

    // --- graceful drain ------------------------------------------------------
    let drain = http_request(addr, "POST", "/shutdown", b"", TIMEOUT)
        .map_err(|e| format!("shutdown: {e}"))?;
    expect(drain.status == 200, "shutdown must answer 200")?;
    expect(server.shutdown_requested(), "shutdown flag must be set")?;
    server.shutdown();
    println!("daemon 1 drained");

    // --- pass 2: restart on the same store -----------------------------------
    let server = Server::start(config(&store)).map_err(|e| format!("restart: {e}"))?;
    let addr = server.addr();
    expect(
        server.service().warmed() == mix_entries.len() + chaos_entries.len(),
        "restart must warm one answer per distinct cell, chaos cells included",
    )?;
    let entry = &mix_entries[0];
    let body = format!(
        "{{\"workload\": \"{}\", \"solver\": \"{}\", \"seed\": {}}}",
        entry.workload, entry.solver, entry.seed
    );
    let resp = http_request(addr, "POST", "/solve", body.as_bytes(), TIMEOUT)
        .map_err(|e| format!("warm solve: {e}"))?;
    expect(resp.status == 200, "warm solve must answer 200")?;
    let text = String::from_utf8_lossy(&resp.body).to_string();
    let answer = kw_results::json::Json::parse(&text).map_err(|e| format!("warm solve: {e}"))?;
    expect(
        answer.get("cached").and_then(|v| v.as_bool()) == Some(true),
        "restarted daemon must serve from the warmed cache",
    )?;
    expect(
        answer.get("dominates").and_then(|v| v.as_bool()) == Some(true),
        "served answer must carry its certificate verdict",
    )?;
    let metrics = scrape(addr)?;
    expect(
        metric(&metrics, "kw_serve_cache_misses_total")? == 0.0,
        "warm daemon must not re-solve",
    )?;
    expect(
        metric(&metrics, "kw_serve_cache_warmed_total")?
            == (mix_entries.len() + chaos_entries.len()) as f64,
        "warmed gauge must count the replayed store, chaos cells included",
    )?;
    server.shutdown();
    println!("pass 2 ok: warm restart served from store");

    // --- bench baselines -----------------------------------------------------
    if let Some(path) = std::env::var_os("KW_BENCH_STORE") {
        let path = PathBuf::from(path);
        append_bench_records(&path, &report).map_err(|e| format!("bench store: {e}"))?;
        println!("latency baselines appended to {}", path.display());
    }

    if !keep_store {
        let _ = std::fs::remove_file(&store);
    }
    Ok(())
}

fn config(store: &std::path::Path) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store: Some(store.to_path_buf()),
        workers: 4,
        queue_depth: 64,
        deadline: TIMEOUT,
    }
}

fn scrape(addr: std::net::SocketAddr) -> Result<String, String> {
    let resp =
        http_request(addr, "GET", "/metrics", b"", TIMEOUT).map_err(|e| format!("metrics: {e}"))?;
    expect(resp.status == 200, "metrics must answer 200")?;
    Ok(String::from_utf8_lossy(&resp.body).to_string())
}

fn metric(text: &str, name: &str) -> Result<f64, String> {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .ok_or_else(|| format!("metric {name} missing from scrape"))
}

fn expect(cond: bool, what: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(what.to_string())
    }
}
