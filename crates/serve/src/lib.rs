//! Solve-as-a-service for the Kuhn–Wattenhofer reproduction.
//!
//! This crate turns the workspace's solver stack into a long-running
//! daemon (`kw-serve`) plus a load generator (`kw-load`), built on
//! nothing but `std`:
//!
//! * [`http`] — a strict, incremental HTTP/1.1 parser and renderer with
//!   hard limits on untrusted input;
//! * [`service`] — request routing and the solve path: specs are parsed
//!   with the same grammars as CLI sweeps, answers are memoized in an
//!   [`kw_core::solver::ExperimentCache`] and persisted to a
//!   [`kw_results::store::RunStore`], so a restarted daemon re-serves
//!   every previous answer without re-solving;
//! * [`server`] — the bounded worker pool with backpressure (503 +
//!   `Retry-After`), per-request deadlines, and graceful drain;
//! * [`telemetry`] — Prometheus-text counters and a fixed-bucket
//!   latency histogram whose percentiles share
//!   [`kw_results::nearest_rank`] with the sweep summaries;
//! * [`load`] — the blocking client, the load generator, and the
//!   `KW_BENCH_STORE` bridge that lets `regress` gate serving latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod load;
pub mod server;
pub mod service;
pub mod telemetry;

pub use http::{parse_request, HttpViolation, Request, Response};
pub use load::{append_bench_records, http_request, run_load, ClientResponse, LoadReport};
pub use server::{ServeConfig, Server};
pub use service::{ServeError, SolveService};
pub use telemetry::{LatencyHistogram, Telemetry};
