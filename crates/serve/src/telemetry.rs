//! Daemon telemetry: lock-free counters and a fixed-bucket latency
//! histogram, rendered as Prometheus text exposition.
//!
//! The histogram's percentile logic is **not** its own: it ranks through
//! [`kw_results::summary::nearest_rank`], the same integer nearest-rank
//! rule `Summary` rollups use. One percentile definition serves both the
//! offline tables and the live `/metrics` endpoint, so their numbers are
//! directly comparable (up to bucket resolution here).

use std::sync::atomic::{AtomicU64, Ordering};

use kw_results::summary::nearest_rank;
use kw_trace::PHASES;

/// Upper bounds (µs, inclusive) of the latency histogram buckets. The
/// final `u64::MAX` bucket catches everything slower; its reported
/// percentile value is capped at [`OVERFLOW_CAP_US`].
pub const BUCKET_BOUNDS_US: [u64; 18] = [
    50,
    100,
    200,
    500,
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    u64::MAX,
];

/// Reported value for percentiles landing in the overflow bucket: twice
/// the last finite bound. An honest "slower than the scale measures"
/// marker that stays plottable.
pub const OVERFLOW_CAP_US: u64 = 20_000_000;

/// Fixed-bucket latency histogram with atomic counts.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKET_BOUNDS_US.len()],
}

impl LatencyHistogram {
    /// Records one latency sample.
    pub fn record(&self, micros: u64) {
        // The last bound is u64::MAX, so every sample lands in a bucket.
        for (&bound, count) in BUCKET_BOUNDS_US.iter().zip(self.counts.iter()) {
            if micros <= bound {
                count.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `percent`-th percentile as the upper bound of the bucket
    /// holding the nearest-rank sample (0 with no samples). Shares
    /// [`nearest_rank`] with `Summary`'s percentiles: a histogram over
    /// exact bucket-bound samples agrees with `Percentiles::from_samples`
    /// on the same data.
    pub fn percentile(&self, percent: usize) -> u64 {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let rank = nearest_rank(percent, total as usize) as u64;
        if rank == 0 {
            return 0;
        }
        let mut cumulative = 0u64;
        for (&bound, &count) in BUCKET_BOUNDS_US.iter().zip(counts.iter()) {
            cumulative += count;
            if cumulative >= rank {
                return bound.min(OVERFLOW_CAP_US);
            }
        }
        OVERFLOW_CAP_US
    }
}

/// Counters of one daemon's lifetime, all updated without locks on the
/// request path.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Requests parsed (complete or violating) over all connections.
    requests: AtomicU64,
    /// Responses by status class.
    r2xx: AtomicU64,
    r4xx: AtomicU64,
    r5xx: AtomicU64,
    /// Connections shed by backpressure (503 before entering the queue;
    /// also counted in `r5xx`).
    shed: AtomicU64,
    /// Solver panics converted to 500s.
    panics: AtomicU64,
    /// Store appends that failed (the answer was still served).
    store_errors: AtomicU64,
    /// Solve requests carrying a non-reliable chaos clause.
    chaos_requests: AtomicU64,
    /// Requests currently being handled by workers.
    inflight: AtomicU64,
    /// Traced solves observed (requests with `"trace": true`).
    traced_solves: AtomicU64,
    /// Cumulative engine-phase time (µs) over traced solves, indexed
    /// like [`PHASES`]. Only traced solves contribute — untraced ones
    /// record no spans to attribute.
    phase_us: [AtomicU64; PHASES.len()],
    /// End-to-end request latency (entering the worker to response
    /// written).
    pub latency: LatencyHistogram,
}

impl Telemetry {
    /// Counts one finished request with its status and latency.
    pub fn observe(&self, status: u16, latency_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.r2xx,
            400..=499 => &self.r4xx,
            _ => &self.r5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency_us);
    }

    /// Counts one connection refused by backpressure.
    pub fn observe_shed(&self, latency_us: u64) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        self.observe(503, latency_us);
    }

    /// Counts one solver panic (the request is also a 5xx).
    pub fn count_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one failed store append.
    pub fn count_store_error(&self) {
        self.store_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one solve request whose chaos clause was not the reliable
    /// plan (parsed successfully; rejected clauses are plain 4xx).
    pub fn count_chaos_request(&self) {
        self.chaos_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Chaos solve requests observed.
    pub fn chaos_requests(&self) -> u64 {
        self.chaos_requests.load(Ordering::Relaxed)
    }

    /// Accumulates one traced solve's per-phase totals into the phase
    /// duration counters.
    pub fn observe_trace(&self, summary: &kw_trace::TraceSummary) {
        self.traced_solves.fetch_add(1, Ordering::Relaxed);
        for (&phase, bucket) in PHASES.iter().zip(self.phase_us.iter()) {
            bucket.fetch_add(summary.phase_total(phase), Ordering::Relaxed);
        }
    }

    /// Traced solves observed.
    pub fn traced_solves(&self) -> u64 {
        self.traced_solves.load(Ordering::Relaxed)
    }

    /// Marks a request entering a worker; the guard exits on drop (also
    /// on panic, so the gauge can never leak).
    pub fn enter(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { telemetry: self }
    }

    /// Current in-flight gauge value.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Total requests observed.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// 5xx responses observed.
    pub fn errors_5xx(&self) -> u64 {
        self.r5xx.load(Ordering::Relaxed)
    }

    /// Renders Prometheus text exposition. Cache numbers come from the
    /// service (they live in the `ExperimentCache`, not here).
    pub fn render_prometheus(&self, cache_hits: u64, cache_misses: u64, warmed: u64) -> String {
        let mut out = String::with_capacity(1024);
        let mut gauge = |name: &str, help: &str, kind: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        gauge(
            "kw_serve_requests_total",
            "Requests handled (all statuses).",
            "counter",
            self.requests.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_responses_2xx_total",
            "Successful responses.",
            "counter",
            self.r2xx.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_responses_4xx_total",
            "Client-error responses.",
            "counter",
            self.r4xx.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_responses_5xx_total",
            "Server-error responses (backpressure sheds included).",
            "counter",
            self.r5xx.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_shed_total",
            "Connections refused with 503 by queue backpressure.",
            "counter",
            self.shed.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_solve_panics_total",
            "Solver panics converted to 500s.",
            "counter",
            self.panics.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_store_errors_total",
            "Run-store appends that failed.",
            "counter",
            self.store_errors.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_chaos_requests_total",
            "Solve requests carrying a non-reliable chaos clause.",
            "counter",
            self.chaos_requests.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_inflight",
            "Requests currently being handled.",
            "gauge",
            self.inflight.load(Ordering::Relaxed),
        );
        gauge(
            "kw_serve_cache_hits_total",
            "Solve answers served from the experiment cache.",
            "counter",
            cache_hits,
        );
        gauge(
            "kw_serve_cache_misses_total",
            "Solve requests that had to compute.",
            "counter",
            cache_misses,
        );
        gauge(
            "kw_serve_cache_warmed_total",
            "Answers replayed from the run store at startup.",
            "counter",
            warmed,
        );
        gauge(
            "kw_serve_latency_count",
            "Latency samples recorded.",
            "counter",
            self.latency.count(),
        );
        for percent in [50, 95, 99] {
            gauge(
                &format!("kw_serve_latency_p{percent}_us"),
                "Nearest-rank request latency percentile, microseconds.",
                "gauge",
                self.latency.percentile(percent),
            );
        }
        gauge(
            "kw_serve_traced_solves_total",
            "Solve requests profiled with the span plane.",
            "counter",
            self.traced_solves.load(Ordering::Relaxed),
        );
        // A labeled metric family: HELP/TYPE once under the bare name,
        // then one sample line per phase label (HELP/TYPE lines with
        // braces are invalid exposition).
        out.push_str(
            "# HELP kw_serve_solve_phase_us_total Cumulative engine-phase time over traced solves, microseconds.\n\
             # TYPE kw_serve_solve_phase_us_total counter\n",
        );
        for (&phase, bucket) in PHASES.iter().zip(self.phase_us.iter()) {
            out.push_str(&format!(
                "kw_serve_solve_phase_us_total{{phase=\"{phase}\"}} {}\n",
                bucket.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

/// RAII guard for the in-flight gauge.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    telemetry: &'a Telemetry,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.telemetry.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_results::summary::Percentiles;

    /// The satellite's pinned sizes: n = 1/2/3/20, plus agreement with
    /// `Percentiles::from_samples` on bucket-bound samples — the "one
    /// percentile code path" contract made observable.
    #[test]
    fn histogram_percentiles_match_summary_on_bucket_bounds() {
        // n = 1: every percentile is the sole sample's bucket.
        let h = LatencyHistogram::default();
        h.record(300); // bucket bound 500
        for percent in [50, 95, 99] {
            assert_eq!(h.percentile(percent), 500);
        }
        // n = 2: p50 takes the 1st sample, p95/p99 the 2nd.
        let h = LatencyHistogram::default();
        h.record(300); // 500
        h.record(40_000); // 50_000
        assert_eq!(h.percentile(50), 500);
        assert_eq!(h.percentile(95), 50_000);
        assert_eq!(h.percentile(99), 50_000);
        // n = 3: p50 is the 2nd order statistic.
        h.record(60); // 100
        assert_eq!(h.percentile(50), 500);
        assert_eq!(h.percentile(95), 50_000);
        // n = 20: 19 fast + 1 slow puts p95 on the fast side and p99 on
        // the slow one (ranks 19 and 20).
        let h = LatencyHistogram::default();
        for _ in 0..19 {
            h.record(80); // bucket bound 100
        }
        h.record(900_000); // bucket bound 1_000_000
        assert_eq!(h.count(), 20);
        assert_eq!(h.percentile(50), 100);
        assert_eq!(h.percentile(95), 100);
        assert_eq!(h.percentile(99), 1_000_000);

        // Cross-check against the summary implementation: feed the same
        // conceptual samples (as exact bucket bounds) to both paths.
        let samples: Vec<f64> = std::iter::repeat_n(100.0, 19)
            .chain([1_000_000.0])
            .collect();
        let p = Percentiles::from_samples(&samples);
        assert_eq!(h.percentile(50), p.p50 as u64);
        assert_eq!(h.percentile(95), p.p95 as u64);
        assert_eq!(h.percentile(99), p.p99 as u64);
    }

    /// Exact boundary semantics: bounds are *inclusive* upper edges, so
    /// a sample equal to a bound lands in that bound's bucket, and one
    /// microsecond more lands in the next.
    #[test]
    fn samples_on_exact_bucket_bounds_land_in_the_bounds_bucket() {
        for &bound in BUCKET_BOUNDS_US.iter().take(BUCKET_BOUNDS_US.len() - 1) {
            let h = LatencyHistogram::default();
            h.record(bound);
            assert_eq!(
                h.percentile(50),
                bound,
                "value == bound {bound} must report that bound"
            );
            let h = LatencyHistogram::default();
            h.record(bound + 1);
            let next = BUCKET_BOUNDS_US
                [BUCKET_BOUNDS_US.iter().position(|&b| b == bound).unwrap() + 1]
                .min(OVERFLOW_CAP_US);
            assert_eq!(
                h.percentile(50),
                next,
                "value {} must spill into the next bucket",
                bound + 1
            );
        }
        // Zero is a valid latency and belongs to the first bucket.
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.percentile(50), BUCKET_BOUNDS_US[0]);
    }

    /// Structural check of the Prometheus text exposition: every
    /// non-comment line is `name[{labels}] value`, every sample is
    /// preceded by HELP and TYPE lines for its bare family name, and
    /// labeled families keep braces out of their HELP/TYPE lines.
    #[test]
    fn metrics_render_as_valid_prometheus_exposition() {
        let t = Telemetry::default();
        t.observe(200, 120);
        t.observe_trace(&kw_trace::TraceSummary {
            threads: 2,
            rounds: 4,
            total_us: 1_000,
            phase_us: vec![("compute".into(), 600), ("deliver".into(), 150)],
            barrier_us: 0,
            imbalance: 1.0,
            pool_wakeups: 0,
            pool_idle: 0,
            structure_hash: 0,
            samples: Vec::new(),
        });
        let text = t.render_prometheus(1, 2, 3);
        let mut typed: Vec<String> = Vec::new();
        let mut helped: Vec<String> = Vec::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(!name.contains('{'), "HELP must use the bare name");
                helped.push(name.to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert!(!name.contains('{'), "TYPE must use the bare name");
                assert!(
                    ["counter", "gauge"].contains(&kind),
                    "unknown metric type {kind}"
                );
                typed.push(name.to_string());
                continue;
            }
            // Sample line: name or name{label="v"} then a u64 value.
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<u64>().expect("sample value is an integer");
            let family = name_part.split('{').next().unwrap();
            assert!(
                family
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name {family}"
            );
            assert!(
                typed.contains(&family.to_string()) && helped.contains(&family.to_string()),
                "sample {family} lacks HELP/TYPE"
            );
            if let Some(labels) = name_part.strip_prefix(&format!("{family}{{")) {
                let labels = labels.strip_suffix('}').expect("balanced braces");
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("label pair");
                    assert!(!k.is_empty());
                    assert!(v.starts_with('"') && v.ends_with('"'), "quoted label value");
                }
            }
        }
        // The phase family appears once per phase, all under one family.
        let phase_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("kw_serve_solve_phase_us_total{"))
            .collect();
        assert_eq!(phase_lines.len(), PHASES.len());
        assert!(text.contains("kw_serve_solve_phase_us_total{phase=\"compute\"} 600\n"));
        assert!(text.contains("kw_serve_solve_phase_us_total{phase=\"plan\"} 0\n"));
        assert!(text.contains("kw_serve_traced_solves_total 1\n"));
        // A second traced solve accumulates.
        t.observe_trace(&kw_trace::TraceSummary {
            threads: 2,
            rounds: 4,
            total_us: 500,
            phase_us: vec![("compute".into(), 400)],
            barrier_us: 0,
            imbalance: 1.0,
            pool_wakeups: 0,
            pool_idle: 0,
            structure_hash: 0,
            samples: Vec::new(),
        });
        assert_eq!(t.traced_solves(), 2);
        assert!(t
            .render_prometheus(1, 2, 3)
            .contains("kw_serve_solve_phase_us_total{phase=\"compute\"} 1000\n"));
    }

    #[test]
    fn histogram_empty_and_overflow_behavior() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50), 0, "no samples, no percentile");
        h.record(u64::MAX); // slower than the scale measures
        assert_eq!(h.percentile(50), OVERFLOW_CAP_US);
    }

    #[test]
    fn telemetry_counts_classes_sheds_and_inflight() {
        let t = Telemetry::default();
        t.observe(200, 100);
        t.observe(404, 100);
        t.observe_shed(5);
        t.count_panic();
        t.count_store_error();
        t.count_chaos_request();
        {
            let _guard = t.enter();
            assert_eq!(t.inflight(), 1);
        }
        assert_eq!(t.inflight(), 0);
        assert_eq!(t.requests(), 3);
        assert_eq!(t.errors_5xx(), 1);
        let text = t.render_prometheus(7, 3, 2);
        assert!(text.contains("kw_serve_requests_total 3\n"));
        assert!(text.contains("kw_serve_responses_2xx_total 1\n"));
        assert!(text.contains("kw_serve_responses_4xx_total 1\n"));
        assert!(text.contains("kw_serve_responses_5xx_total 1\n"));
        assert!(text.contains("kw_serve_shed_total 1\n"));
        assert!(text.contains("kw_serve_solve_panics_total 1\n"));
        assert!(text.contains("kw_serve_store_errors_total 1\n"));
        assert_eq!(t.chaos_requests(), 1);
        assert!(text.contains("kw_serve_chaos_requests_total 1\n"));
        assert!(text.contains("kw_serve_inflight 0\n"));
        assert!(text.contains("kw_serve_cache_hits_total 7\n"));
        assert!(text.contains("kw_serve_cache_misses_total 3\n"));
        assert!(text.contains("kw_serve_cache_warmed_total 2\n"));
        assert!(text.contains("kw_serve_latency_count 3\n"));
        assert!(text.contains("kw_serve_latency_p99_us "));
    }
}
