//! A deliberately small HTTP/1.1 implementation: exactly what a
//! std-only daemon needs to accept untrusted request bytes safely.
//!
//! The parser is *incremental* — [`parse_request`] is handed whatever
//! bytes have arrived so far and answers one of three things: "complete
//! request (and how many bytes it consumed)", "keep reading", or "this
//! connection is sending garbage, answer `4xx` and hang up". Returning
//! the consumed byte count is what makes pipelined keep-alive work: the
//! connection loop drains one request's bytes and re-parses the
//! remainder.
//!
//! Strictness is the point, not pedantry: every request limit
//! ([`MAX_HEADER_BYTES`], [`MAX_BODY_BYTES`], [`MAX_HEADER_COUNT`]) is
//! enforced *before* buffering unbounded attacker-controlled input, and
//! anything malformed maps to a 4xx status via [`HttpViolation`] —
//! never a panic.

use std::fmt;

use kw_results::json::Json;

/// Most header bytes a request may send (request line + all headers +
/// terminator). Chosen generously above anything `kw-load` or a curl
/// sends, and far below anything that could pressure memory.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Largest accepted request body. Workload + solver specs are tens of
/// bytes; 64 KiB leaves room for growth without inviting abuse.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Most header fields a request may send.
pub const MAX_HEADER_COUNT: usize = 64;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase by construction.
    pub method: String,
    /// Request target as sent (path plus optional query).
    pub target: String,
    /// Whether the request was HTTP/1.1 (HTTP/1.0 is accepted too, with
    /// keep-alive defaulting off).
    pub http11: bool,
    /// Header fields in arrival order, names as sent (lookup is
    /// case-insensitive via [`Request::header`]).
    pub headers: Vec<(String, String)>,
    /// Request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The path component of the target (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// Whether the client asked to close the connection after this
    /// request (explicitly, or implicitly by speaking HTTP/1.0).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }
}

/// Everything that makes a request unacceptable, each with the status
/// the daemon answers before closing the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpViolation {
    /// No header terminator within [`MAX_HEADER_BYTES`] (or too many
    /// fields).
    HeadersTooLarge,
    /// `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// `Transfer-Encoding` (chunked or otherwise) is not served;
    /// clients must send `Content-Length`.
    ChunkedUnsupported,
    /// Anything else syntactically wrong, with a human-readable reason.
    Malformed(&'static str),
}

impl HttpViolation {
    /// The response status for this violation.
    pub fn status(&self) -> u16 {
        match self {
            HttpViolation::HeadersTooLarge => 431,
            HttpViolation::BodyTooLarge => 413,
            HttpViolation::ChunkedUnsupported => 411,
            HttpViolation::Malformed(_) => 400,
        }
    }
}

impl fmt::Display for HttpViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpViolation::HeadersTooLarge => {
                write!(f, "request headers exceed {MAX_HEADER_BYTES} bytes")
            }
            HttpViolation::BodyTooLarge => {
                write!(f, "request body exceeds {MAX_BODY_BYTES} bytes")
            }
            HttpViolation::ChunkedUnsupported => {
                write!(f, "Transfer-Encoding is not supported; send Content-Length")
            }
            HttpViolation::Malformed(reason) => write!(f, "malformed request: {reason}"),
        }
    }
}

/// Tries to parse one request from the front of `buf`.
///
/// * `Ok(Some((request, consumed)))` — a complete request; the caller
///   drains `consumed` bytes and may find the next pipelined request
///   right behind it.
/// * `Ok(None)` — incomplete but within limits; read more bytes.
/// * `Err(violation)` — protocol error; answer [`HttpViolation::status`]
///   and close.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, HttpViolation> {
    // Find the header terminator, refusing to scan (or buffer) beyond
    // the header cap.
    let window = &buf[..buf.len().min(MAX_HEADER_BYTES)];
    let head_end = match find(window, b"\r\n\r\n") {
        Some(i) => i,
        None => {
            if buf.len() >= MAX_HEADER_BYTES {
                return Err(HttpViolation::HeadersTooLarge);
            }
            return Ok(None);
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpViolation::Malformed("header bytes are not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    // A stray CR or LF inside any header line means the client's line
    // endings are broken (bare-LF terminators, smuggled CRs): reject
    // rather than guess.
    if head
        .split("\r\n")
        .any(|l| l.contains('\r') || l.contains('\n'))
    {
        return Err(HttpViolation::Malformed("bare CR or LF in header block"));
    }

    let parts: Vec<&str> = request_line.split(' ').collect();
    let [method, target, version] = parts.as_slice() else {
        return Err(HttpViolation::Malformed(
            "request line must be `METHOD SP TARGET SP VERSION`",
        ));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpViolation::Malformed(
            "method must be an uppercase ASCII token",
        ));
    }
    if !target.starts_with('/') {
        return Err(HttpViolation::Malformed("target must start with '/'"));
    }
    let http11 = match *version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpViolation::Malformed("unsupported HTTP version")),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADER_COUNT {
            return Err(HttpViolation::HeadersTooLarge);
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpViolation::Malformed(
                "obsolete header line folding is not accepted",
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpViolation::Malformed("header line without ':'"));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpViolation::Malformed("malformed header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
        body: Vec::new(),
    };

    // Body framing. Transfer-Encoding (chunked included) is refused
    // outright — a solve request has no business streaming — so
    // Content-Length is the only accepted framing.
    if request.header("transfer-encoding").is_some() {
        return Err(HttpViolation::ChunkedUnsupported);
    }
    let content_lengths: Vec<&str> = request
        .headers
        .iter()
        .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.as_str())
        .collect();
    if content_lengths.len() > 1 {
        return Err(HttpViolation::Malformed("multiple Content-Length headers"));
    }
    let content_length = match content_lengths.first() {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpViolation::Malformed("unparseable Content-Length"))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(HttpViolation::BodyTooLarge);
    }

    let body_start = head_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None); // body promised and within limits: keep reading
    }
    let mut request = request;
    request.body = buf[body_start..total].to_vec();
    Ok(Some((request, total)))
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// One response, rendered with `Content-Length` framing (never chunked).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Retry-After` seconds (the backpressure reply).
    pub retry_after: Option<u32>,
    /// Whether to send `Connection: close` and drop the connection.
    pub close: bool,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
            close: false,
        }
    }

    /// A JSON response.
    pub fn json(status: u16, value: &Json) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: value.render().into_bytes(),
            retry_after: None,
            close: false,
        }
    }

    /// A JSON error envelope: `{"error": reason}`.
    pub fn error(status: u16, reason: impl Into<String>) -> Self {
        Self::json(status, &Json::obj([("error", Json::Str(reason.into()))]))
    }

    /// The response for a protocol violation; always closes.
    pub fn for_violation(v: &HttpViolation) -> Self {
        let mut resp = Self::error(v.status(), v.to_string());
        resp.close = true;
        resp
    }

    /// Serializes status line, headers, and body.
    pub fn render(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            reason_phrase(self.status),
            self.content_type,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        if self.close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

/// Reason phrase for the handful of statuses the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}
