//! Acceptance contract of the persistent worker pool: the *results* of
//! an engine run — every node's output, the message/bit metrics, and
//! the trace structure hash — are bit-identical at 1, 2, and 8 worker
//! threads, on generated graphs, on a bundled DIMACS instance, and
//! under a full chaos mix. `exp_s0_scaling` asserts the same contract
//! on its own (much larger) cells; this test keeps it in the default
//! `cargo test` tier with laptop-sized workloads.

use kw_bench::instances;
use kw_bench::traffic::{Flood, Ping};
use kw_graph::{generators, CsrGraph};
use kw_sim::{ChaosPlan, Engine, EngineConfig};
use kw_trace::Tracer;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Everything a run produces that must not depend on the thread count:
/// full per-node outputs, the round/message/bit metrics, and the span
/// structure hash.
type Fingerprint = (Vec<u64>, usize, u64, u64, u64);

fn run(g: &CsrGraph, chaos: &ChaosPlan, threads: usize, ping: bool) -> Fingerprint {
    let cfg = EngineConfig {
        threads,
        faults: chaos.clone(),
        max_rounds: 200,
        ..Default::default()
    };
    kw_trace::install(Tracer::new());
    kw_trace::with_active(|t| t.begin("solve"));
    let report = if ping {
        Engine::new(g, cfg, |info| Ping::new(u64::from(info.id.raw()), 6))
            .run()
            .expect("run succeeds")
    } else {
        Engine::new(g, cfg, |info| Flood::new(u64::from(info.id.raw()), 6))
            .run()
            .expect("run succeeds")
    };
    let mut tracer = kw_trace::take().expect("tracer installed");
    tracer.finish();
    (
        report.outputs,
        report.metrics.rounds,
        report.metrics.messages,
        report.metrics.bits,
        tracer.structure_hash(),
    )
}

fn assert_invariant(g: &CsrGraph, chaos: &ChaosPlan, what: &str) {
    for ping in [false, true] {
        let shape = if ping { "ping" } else { "flood" };
        let base = run(g, chaos, 1, ping);
        assert!(
            base.0.iter().any(|&x| x != 0),
            "{what}/{shape}: degenerate outputs"
        );
        for threads in [2usize, 8] {
            assert_eq!(
                base,
                run(g, chaos, threads, ping),
                "{what}/{shape}: results differ at {threads} threads"
            );
        }
    }
}

#[test]
fn results_are_thread_invariant_on_gnp() {
    let mut rng = SmallRng::seed_from_u64(21);
    let g = generators::gnp(500, 0.03, &mut rng);
    assert_invariant(&g, &ChaosPlan::reliable(), "gnp(500, 0.03)");
}

#[test]
fn results_are_thread_invariant_on_bundled_dimacs() {
    let meta = instances::find("queen5_5").expect("bundled instance");
    let (g, _) = instances::load(meta).expect("parse bundled DIMACS");
    assert_invariant(&g, &ChaosPlan::reliable(), "queen5_5");
}

#[test]
fn results_are_thread_invariant_under_full_chaos_mix() {
    // Every chaos ingredient at once on a cycle, where all scripted
    // node/edge references exist (the same plan the engine's own
    // thread-invariance test uses).
    let g = generators::cycle(150);
    let chaos = ChaosPlan::parse(
        "drop=0.1,seed=11,burst=r1-3@0.8/0.5,crash=7@r2-4,crash=33@r1,byz=3+90,\
         churn=r2re0-1+r3l5+r5j5",
    )
    .expect("valid spec");
    assert_invariant(&g, &chaos, "cycle(150) under full chaos mix");
}

#[test]
fn results_are_thread_invariant_under_iid_drops_on_gnp() {
    let mut rng = SmallRng::seed_from_u64(8);
    let g = generators::gnp(300, 0.05, &mut rng);
    let chaos = ChaosPlan::parse("drop=0.2,seed=3").expect("valid spec");
    assert_invariant(&g, &chaos, "gnp(300, 0.05) under drop=0.2");
}
