//! Satellite contract of the trace plane: span *structure* and round
//! samples are functions of the workload alone, never of the worker
//! count. Only tick values may differ between runs.
//!
//! Covered here at both layers:
//!
//! * engine level — a raw [`kw_sim::Engine`] run with a tracer
//!   installed, on a generated G(n, p) graph and on a bundled DIMACS
//!   instance, at 1/2/8 workers;
//! * solver level — [`kw_core::solver::traced_solve`] over the full
//!   composite pipeline, including under a chaos plan, at 1/2/8
//!   solver threads.

use kw_bench::instances;
use kw_core::solver::{SolveContext, SolverRegistry};
use kw_graph::{generators, CsrGraph};
use kw_sim::rng::split_mix64;
use kw_sim::wire::{BitReader, BitWriter, WireEncode};
use kw_sim::{ChaosPlan, Ctx, Engine, EngineConfig, Protocol, Status};
use kw_trace::{RoundSample, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Clone)]
struct Word(u64);

impl WireEncode for Word {
    fn encode(&self, w: &mut BitWriter) {
        w.write_gamma(self.0);
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        r.read_gamma().map(Word)
    }

    fn encoded_bits(&self) -> usize {
        kw_sim::wire::gamma_len(self.0)
    }
}

/// Mixed traffic: one broadcast plus one hashed unicast per node per
/// round, so both send paths contribute to the sampled counters.
struct Mixed {
    me: u64,
    acc: u64,
    rounds_left: u32,
}

impl Protocol for Mixed {
    type Msg = Word;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Word>) -> Status {
        for (_, m) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(m.0);
        }
        if self.rounds_left == 0 {
            return Status::Halted;
        }
        self.rounds_left -= 1;
        ctx.broadcast(Word(self.acc | 1));
        let degree = ctx.degree();
        if degree > 0 {
            let port =
                (split_mix64(self.me ^ u64::from(self.rounds_left)) % u64::from(degree)) as u32;
            ctx.send(port, Word(self.me | 1));
        }
        Status::Running
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Runs the engine once with a tracer installed and returns the
/// thread-invariant parts: span structure, structure hash, samples,
/// and summed outputs.
fn engine_fingerprint(
    g: &CsrGraph,
    threads: usize,
) -> (Vec<(u16, &'static str)>, u64, Vec<RoundSample>, u64) {
    let cfg = EngineConfig {
        threads,
        ..Default::default()
    };
    kw_trace::install(Tracer::new());
    kw_trace::with_active(|t| t.begin("solve"));
    let report = Engine::new(g, cfg, |info| Mixed {
        me: u64::from(info.id.raw()),
        acc: u64::from(info.id.raw()),
        rounds_left: 5,
    })
    .run()
    .expect("reliable run");
    let mut tracer = kw_trace::take().expect("tracer installed");
    tracer.finish();
    let out = report.outputs.iter().fold(0u64, |a, &x| a.wrapping_add(x));
    (
        tracer.structure(),
        tracer.structure_hash(),
        tracer.samples().to_vec(),
        out,
    )
}

fn assert_engine_invariant(g: &CsrGraph, what: &str) {
    let (structure, hash, samples, out) = engine_fingerprint(g, 1);
    assert!(!structure.is_empty(), "{what}: no spans recorded");
    assert!(!samples.is_empty(), "{what}: no round samples recorded");
    for threads in [2usize, 8] {
        let (s, h, r, o) = engine_fingerprint(g, threads);
        assert_eq!(
            structure, s,
            "{what}: span structure differs at {threads} threads"
        );
        assert_eq!(
            hash, h,
            "{what}: structure hash differs at {threads} threads"
        );
        assert_eq!(
            samples, r,
            "{what}: round samples differ at {threads} threads"
        );
        assert_eq!(out, o, "{what}: outputs differ at {threads} threads");
    }
}

#[test]
fn engine_trace_structure_is_thread_invariant_on_gnp() {
    let mut rng = SmallRng::seed_from_u64(11);
    let g = generators::gnp(400, 0.03, &mut rng);
    assert_engine_invariant(&g, "gnp(400, 0.03)");
}

#[test]
fn engine_trace_structure_is_thread_invariant_on_bundled_dimacs() {
    let meta = instances::find("queen5_5").expect("bundled instance");
    let (g, _) = instances::load(meta).expect("parse bundled DIMACS");
    assert_engine_invariant(&g, "queen5_5");
}

/// Solver-level fingerprint: the serialized thread-invariant parts of
/// the [`kw_trace::TraceSummary`] a traced solve attaches.
fn solver_fingerprint(
    g: &CsrGraph,
    ctx: &SolveContext,
) -> (Vec<String>, u64, u64, Vec<RoundSample>, usize) {
    let registry = SolverRegistry::with_core_solvers();
    let solver = registry.build("kw:k=2").expect("build kw solver");
    let report = kw_core::solver::traced_solve(&*solver, g, ctx).expect("traced solve succeeds");
    let summary = report.trace.expect("trace requested");
    (
        summary.phase_us.iter().map(|(l, _)| l.clone()).collect(),
        summary.rounds,
        summary.structure_hash,
        summary.samples.clone(),
        report.dominating_set.len(),
    )
}

fn assert_solver_invariant(g: &CsrGraph, base: &SolveContext, what: &str) {
    let one = solver_fingerprint(
        g,
        &SolveContext {
            threads: 1,
            ..base.clone()
        },
    );
    assert!(one.1 > 0, "{what}: no rounds traced");
    for threads in [2usize, 8] {
        let ctx = SolveContext {
            threads,
            ..base.clone()
        };
        let other = solver_fingerprint(g, &ctx);
        assert_eq!(
            one, other,
            "{what}: trace fingerprint differs at {threads} threads"
        );
    }
}

#[test]
fn solver_trace_structure_is_thread_invariant() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = generators::gnp(300, 0.04, &mut rng);
    let ctx = SolveContext {
        seed: 9,
        trace: true,
        ..Default::default()
    };
    assert_solver_invariant(&g, &ctx, "kw:k=2 on gnp(300)");
}

#[test]
fn solver_trace_structure_is_thread_invariant_under_chaos() {
    let mut rng = SmallRng::seed_from_u64(5);
    let g = generators::gnp(300, 0.04, &mut rng);
    let ctx = SolveContext {
        seed: 9,
        trace: true,
        faults: ChaosPlan::parse("drop=0.05,seed=7").expect("valid chaos clause"),
        ..Default::default()
    };
    assert_solver_invariant(&g, &ctx, "kw:k=2 on gnp(300) under drop=0.05");
}
