//! External graphs as first-class sweep citizens: bundled DIMACS
//! instances flow through spec parsing, the experiment cache, the
//! persistent run store, and session resume exactly like generated
//! workloads.

use std::path::PathBuf;

use kw_bench::instances;
use kw_bench::workloads::{parse_suite, Workload};
use kw_core::solver::{ExperimentRunner, SolveError};
use kw_graph::CsrGraph;
use kw_results::pipeline::{PipelineError, SweepSession};

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "kw_instance_workloads_{}_{tag}.jsonl",
        std::process::id()
    ))
}

/// Materializes workloads the way the experiment drivers do. Instance
/// workloads are seed-invariant, so one build per workload suffices.
fn materialize(suite: &[Workload]) -> Vec<(String, CsrGraph)> {
    suite.iter().map(|w| (w.label(), w.build(0))).collect()
}

#[test]
fn bundled_instances_reach_solvers_through_the_spec_grammar() {
    // CLI-shaped specs → workloads → validated graphs → a solve.
    let suite = parse_suite([
        "dimacs:instances/myciel3.col",
        "dimacs:instances/queen5_5.col",
        "dimacs:instances/adhoc25.col",
    ])
    .expect("bundled instance specs parse");
    assert_eq!(suite.len(), instances::BUNDLED.len());
    let registry = kw_baselines::registry();
    let solvers = registry.build_all(["kw:k=2", "greedy"]).unwrap();
    let cells = ExperimentRunner::new()
        .run_matrix(&solvers, &materialize(&suite), 0..2)
        .expect("instance matrix runs");
    assert_eq!(cells.len(), 2 * suite.len());
    for cell in &cells {
        assert_eq!(cell.failures, 0, "{}/{}", cell.solver, cell.workload);
        assert!(cell.ratio_vs_lemma1.mean >= 1.0 - 1e-9);
    }
}

/// The acceptance criterion of ROADMAP item (g): a bundled instance
/// completes a cached, persistent sweep, and a fresh session over the
/// same store resumes to 100% cache hits with identical summaries.
#[test]
fn instance_sweep_persists_and_resumes_to_full_cache_hits() {
    let path = temp_store("resume");
    let _ = std::fs::remove_file(&path);
    let suite = instances::suite();
    let workloads = materialize(&suite);
    let registry = kw_baselines::registry();
    let solvers = registry.build_all(["kw:k=2", "trivial"]).unwrap();
    let runner = ExperimentRunner::new().workers(2);
    let total = (solvers.len() * workloads.len() * 3) as u64;

    let mut session = SweepSession::open(&path).expect("open fresh store");
    let first = session
        .run(&runner, &solvers, &workloads, 0..3, |_| {})
        .expect("first sweep");
    assert_eq!((first.solved, first.cached), (total, 0));
    assert!(first.store_error.is_none());
    drop(session); // release the writer lock for the resume session

    let mut resumed = SweepSession::open(&path).expect("reopen store");
    assert_eq!(resumed.replayed() as u64, total);
    let second = resumed
        .run(&runner, &solvers, &workloads, 0..3, |_| {})
        .expect("resumed sweep");
    assert_eq!(
        (second.solved, second.cached),
        (0, total),
        "resume must re-solve nothing"
    );
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(a.size, b.size, "{}/{}", a.solver, a.workload);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
    }
    std::fs::remove_file(&path).unwrap();
}

/// A label reused for a different graph must be refused on replay (the
/// store-level guard) — instance labels are store keys like any other.
#[test]
fn instance_label_reuse_with_different_graph_is_rejected_on_resume() {
    let path = temp_store("stale");
    let _ = std::fs::remove_file(&path);
    let registry = kw_baselines::registry();
    let solvers = registry.build_all(["trivial"]).unwrap();
    let runner = ExperimentRunner::new();
    let real = materialize(&instances::suite()[..1]);
    let mut session = SweepSession::open(&path).expect("open store");
    session
        .run(&runner, &solvers, &real, 0..2, |_| {})
        .expect("first sweep");
    drop(session); // release the writer lock for the reopened session
                   // Same label, different graph: the session must refuse to replay.
    let imposter = vec![(real[0].0.clone(), kw_graph::generators::grid(3, 3))];
    let mut reopened = SweepSession::open(&path).expect("reopen store");
    match reopened.run(&runner, &solvers, &imposter, 0..2, |_| {}) {
        Err(PipelineError::StaleWorkload { workload, .. }) => {
            assert_eq!(workload, real[0].0);
        }
        other => panic!("expected StaleWorkload, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

/// Duplicate labels fail fast through the whole stack, not just the
/// bare runner: a session sweep refuses before solving anything.
#[test]
fn duplicate_labels_fail_fast_through_the_session() {
    let path = temp_store("dup");
    let _ = std::fs::remove_file(&path);
    let registry = kw_baselines::registry();
    let solvers = registry.build_all(["trivial"]).unwrap();
    let w = instances::suite().remove(0);
    // The same instance twice: identical labels, identical graphs — the
    // aliasing is still refused because cached cells would be
    // indistinguishable from solved ones.
    let dup = vec![(w.label(), w.build(0)), (w.label(), w.build(0))];
    let mut session = SweepSession::open(&path).expect("open store");
    match session.run(&ExperimentRunner::new(), &solvers, &dup, 0..2, |_| {}) {
        Err(PipelineError::Solve(SolveError::DuplicateWorkload { label })) => {
            assert_eq!(label, w.label());
        }
        other => panic!("expected DuplicateWorkload, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

/// Mixed matrices — generated and instance workloads side by side —
/// share one cache and one store without label collisions.
#[test]
fn mixed_generated_and_instance_matrices_sweep_together() {
    let suite = parse_suite(["gnp:n=32,p=0.2", "dimacs:instances/myciel3.col"]).unwrap();
    let registry = kw_baselines::registry();
    let solvers = registry.build_all(["greedy"]).unwrap();
    let cells = ExperimentRunner::new()
        .run_matrix(&solvers, &materialize(&suite), 0..2)
        .expect("mixed matrix runs");
    let labels: Vec<&str> = cells.iter().map(|c| c.workload.as_str()).collect();
    assert_eq!(labels, ["gnp(n=32,p=0.2)", "dimacs(myciel3)"]);
}
