//! Wall-clock scaling of the baselines (T5 runtime companion): greedy,
//! Luby MIS, and JRS/LRG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graphs() -> Vec<(usize, kw_graph::CsrGraph)> {
    let mut rng = SmallRng::seed_from_u64(2);
    [200usize, 800, 3200]
        .into_iter()
        .map(|n| (n, generators::gnp(n, 8.0 / n as f64, &mut rng)))
        .collect()
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| kw_baselines::greedy::greedy_mds(g))
        });
    }
    group.finish();
}

fn bench_luby(c: &mut Criterion) {
    let mut group = c.benchmark_group("luby_mis");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| kw_baselines::luby_mis::run_luby_mis(g, 7).unwrap())
        });
    }
    group.finish();
}

fn bench_jrs(c: &mut Criterion) {
    let mut group = c.benchmark_group("jrs_lrg");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| kw_baselines::jrs::run_jrs(g, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_luby, bench_jrs);
criterion_main!(benches);
