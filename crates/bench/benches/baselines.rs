//! Wall-clock scaling of the baselines (T5 runtime companion): greedy,
//! Luby MIS, and JRS/LRG, each driven through the `DsSolver` trait.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_core::solver::{DsSolver, SolveContext};
use kw_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graphs() -> Vec<(usize, kw_graph::CsrGraph)> {
    let mut rng = SmallRng::seed_from_u64(2);
    [200usize, 800, 3200]
        .into_iter()
        .map(|n| (n, generators::gnp(n, 8.0 / n as f64, &mut rng)))
        .collect()
}

fn bench_baseline(c: &mut Criterion, group_name: &str, spec: &str) {
    let solver = kw_baselines::registry()
        .build(spec)
        .expect("spec registered");
    let ctx = SolveContext {
        check_certificates: false,
        ..SolveContext::seeded(7)
    };
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| solver.solve(g, &ctx).unwrap())
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    bench_baseline(c, "greedy", "greedy");
}

fn bench_luby(c: &mut Criterion) {
    bench_baseline(c, "luby_mis", "luby-mis");
}

fn bench_jrs(c: &mut Criterion) {
    bench_baseline(c, "jrs_lrg", "jrs");
}

criterion_group!(benches, bench_greedy, bench_luby, bench_jrs);
criterion_main!(benches);
