//! Raw round-loop throughput of the `kw_sim` engine's message plane.
//!
//! Three traffic shapes bound the message plane from all sides:
//!
//! * **flood** — broadcast-heavy: every node broadcasts one word per round
//!   (the shape of Algorithms 1–3, where deliveries dominate and the
//!   engine's uniform-solo placement fast path applies);
//! * **ping** — unicast-heavy: every node sends four unicasts per round to
//!   hash-chosen ports (the worst case for receiver-driven outbox scans,
//!   where most scanned entries are addressed to someone else);
//! * **burst** — the send-path stress: every node stages a broadcast plus
//!   two unicasts per round, so every sender takes the staged (non-solo)
//!   route through the arena: send-time accounting, per-arc counting,
//!   plan cursors, and sender-major staging all on the hot path.
//!
//! Both run at n ∈ {1_000, 10_000} on G(n, p) with average degree ≈ 16,
//! sequentially and with 4 worker threads. `BENCH_engine.json` at the repo
//! root records the before/after numbers for the flat-CSR message-plane
//! rewrite, and `BENCH_engine.jsonl` holds the same "after" numbers in
//! the `kw_results` run-store format for `regress` gating. Set
//! `KW_BENCH_QUICK=1` (as CI does) to run a seconds-scale smoke of all
//! three groups — flood, ping, and the burst send-path bench —
//! and `KW_BENCH_STORE=<path>` to append every measurement to that run
//! store when the groups finish.

use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion};
use kw_graph::generators;
use kw_sim::rng::split_mix64;
use kw_sim::wire::{BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, Status};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[derive(Clone)]
struct Word(u64);

impl WireEncode for Word {
    fn encode(&self, w: &mut BitWriter) {
        w.write_gamma(self.0);
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        r.read_gamma().map(Word)
    }

    fn encoded_bits(&self) -> usize {
        kw_sim::wire::gamma_len(self.0)
    }
}

/// Broadcast-heavy: one broadcast per node per round.
struct Flood {
    acc: u64,
    rounds_left: u32,
}

impl Protocol for Flood {
    type Msg = Word;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Word>) -> Status {
        for (_, m) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(m.0);
        }
        if self.rounds_left == 0 {
            return Status::Halted;
        }
        self.rounds_left -= 1;
        ctx.broadcast(Word(self.acc | 1));
        Status::Running
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Unicast-heavy: four unicasts per node per round to hash-chosen ports.
struct Ping {
    me: u64,
    acc: u64,
    rounds_left: u32,
}

impl Protocol for Ping {
    type Msg = Word;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Word>) -> Status {
        for (_, m) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(m.0);
        }
        if self.rounds_left == 0 {
            return Status::Halted;
        }
        self.rounds_left -= 1;
        let degree = ctx.degree();
        if degree > 0 {
            for i in 0..4u64 {
                let port = (split_mix64(self.me ^ (u64::from(self.rounds_left) << 8) ^ i)
                    % u64::from(degree)) as u32;
                ctx.send(port, Word(self.acc | 1));
            }
        }
        Status::Running
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Send-path stress: every node broadcasts and unicasts twice per round,
/// keeping every sender on the staged route through the send arena.
struct Burst {
    me: u64,
    acc: u64,
    rounds_left: u32,
}

impl Protocol for Burst {
    type Msg = Word;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Word>) -> Status {
        for (_, m) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(m.0);
        }
        if self.rounds_left == 0 {
            return Status::Halted;
        }
        self.rounds_left -= 1;
        let degree = ctx.degree();
        ctx.broadcast(Word(self.acc | 1));
        if degree > 0 {
            for i in 0..2u64 {
                let port = (split_mix64(self.me ^ (u64::from(self.rounds_left) << 9) ^ i)
                    % u64::from(degree)) as u32;
                ctx.send(port, Word(self.acc | 1));
            }
        }
        Status::Running
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

fn quick() -> bool {
    std::env::var_os("KW_BENCH_QUICK").is_some_and(|v| v != "0")
}

fn sizes() -> Vec<usize> {
    if quick() {
        vec![1_000]
    } else {
        vec![1_000, 10_000]
    }
}

fn rounds() -> u32 {
    if quick() {
        4
    } else {
        10
    }
}

fn graph(n: usize) -> kw_graph::CsrGraph {
    let mut rng = SmallRng::seed_from_u64(42);
    generators::gnp(n, 16.0 / n as f64, &mut rng)
}

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    if quick() {
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(200));
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(3));
    }
    group.warm_up_time(Duration::from_millis(500));
}

fn bench_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_flood");
    configure(&mut group);
    let r = rounds();
    for n in sizes() {
        let g = graph(n);
        for threads in [1usize, 4] {
            let cfg = EngineConfig {
                threads,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), n),
                &g,
                |b, g| {
                    b.iter(|| {
                        Engine::new(g, cfg.clone(), |info| Flood {
                            acc: u64::from(info.id.raw()),
                            rounds_left: r,
                        })
                        .run()
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_ping(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ping");
    configure(&mut group);
    let r = rounds();
    for n in sizes() {
        let g = graph(n);
        for threads in [1usize, 4] {
            let cfg = EngineConfig {
                threads,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), n),
                &g,
                |b, g| {
                    b.iter(|| {
                        Engine::new(g, cfg.clone(), |info| Ping {
                            me: u64::from(info.id.raw()),
                            acc: u64::from(info.id.raw()),
                            rounds_left: r,
                        })
                        .run()
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_burst");
    configure(&mut group);
    let r = rounds();
    for n in sizes() {
        let g = graph(n);
        for threads in [1usize, 4] {
            let cfg = EngineConfig {
                threads,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), n),
                &g,
                |b, g| {
                    b.iter(|| {
                        Engine::new(g, cfg.clone(), |info| Burst {
                            me: u64::from(info.id.raw()),
                            acc: u64::from(info.id.raw()),
                            rounds_left: r,
                        })
                        .run()
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flood, bench_ping, bench_burst);

fn main() {
    benches();
    persist_measurements();
}

/// Appends this run's measurements to the run store named by
/// `KW_BENCH_STORE`, one `bench` line each, so engine numbers share the
/// durable format (and `regress` gating) of experiment records.
fn persist_measurements() {
    let Some(path) = std::env::var_os("KW_BENCH_STORE") else {
        return;
    };
    let store = kw_results::RunStore::open(&path).expect("open bench store");
    let measurements = criterion::collected_measurements();
    for m in &measurements {
        let (bench, id) = m.label.split_once('/').unwrap_or((m.label.as_str(), ""));
        store
            .append_bench(&kw_results::BenchRecord {
                bench: bench.to_string(),
                id: id.to_string(),
                best_ms: m.best_ms,
            })
            .expect("append bench measurement");
    }
    println!(
        "bench store: appended {} measurements to {}",
        measurements.len(),
        path.to_string_lossy()
    );
}
