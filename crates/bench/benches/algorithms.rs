//! Wall-clock scaling of the paper's algorithms (T1/T2/T5 runtime
//! companion): the `alg2` and `kw` solvers, the rounding stage, and the
//! full default pipeline across graph sizes.
//!
//! Solvers are constructed once from the registry and driven through the
//! `DsSolver` trait; certificates are disabled so the timings measure the
//! algorithms, not verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_core::rounding::{run_rounding, RoundingConfig};
use kw_core::solver::{DsSolver, SolveContext, SolverRegistry};
use kw_graph::{generators, FractionalAssignment};
use kw_sim::EngineConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graphs() -> Vec<(usize, kw_graph::CsrGraph)> {
    let mut rng = SmallRng::seed_from_u64(1);
    [200usize, 800, 3200]
        .into_iter()
        .map(|n| (n, generators::gnp(n, 8.0 / n as f64, &mut rng)))
        .collect()
}

fn bench_ctx() -> SolveContext {
    SolveContext {
        check_certificates: false,
        ..SolveContext::seeded(5)
    }
}

fn bench_solver(c: &mut Criterion, group_name: &str, spec: &str, ctx: SolveContext) {
    let solver = SolverRegistry::with_core_solvers()
        .build(spec)
        .expect("spec registered");
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| solver.solve(g, &ctx).unwrap())
        });
    }
    group.finish();
}

fn bench_alg2(c: &mut Criterion) {
    bench_solver(c, "solver_alg2_k3", "alg2:k=3", bench_ctx());
}

fn bench_alg3(c: &mut Criterion) {
    bench_solver(c, "solver_kw_k3", "kw:k=3", bench_ctx());
}

fn bench_alg3_parallel(c: &mut Criterion) {
    let ctx = SolveContext {
        threads: 4,
        ..bench_ctx()
    };
    bench_solver(c, "solver_kw_k3_threads4", "kw:k=3", ctx);
}

fn bench_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounding");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        let x = FractionalAssignment::uniform(&g, 0.2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&g, &x), |b, (g, x)| {
            b.iter(|| {
                run_rounding(g, x, RoundingConfig::default(), EngineConfig::seeded(3)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    bench_solver(c, "solver_kw_k2", "kw:k=2", bench_ctx());
}

criterion_group!(
    benches,
    bench_alg2,
    bench_alg3,
    bench_alg3_parallel,
    bench_rounding,
    bench_pipeline
);
criterion_main!(benches);
