//! Wall-clock scaling of the paper's algorithms (T1/T2/T5 runtime
//! companion): Algorithm 2, Algorithm 3, rounding, and the full pipeline
//! across graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_core::rounding::{run_rounding, RoundingConfig};
use kw_core::{Pipeline, PipelineConfig};
use kw_graph::{generators, FractionalAssignment};
use kw_sim::EngineConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graphs() -> Vec<(usize, kw_graph::CsrGraph)> {
    let mut rng = SmallRng::seed_from_u64(1);
    [200usize, 800, 3200]
        .into_iter()
        .map(|n| (n, generators::gnp(n, 8.0 / n as f64, &mut rng)))
        .collect()
}

fn bench_alg2(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_k3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| kw_core::alg2::run_alg2(g, 3, EngineConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_alg3(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3_k3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| kw_core::alg3::run_alg3(g, 3, EngineConfig::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_alg3_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg3_k3_threads4");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        let cfg = EngineConfig { threads: 4, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| kw_core::alg3::run_alg3(g, 3, cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounding");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        let x = FractionalAssignment::uniform(&g, 0.2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&g, &x), |b, (g, x)| {
            b.iter(|| {
                run_rounding(g, x, RoundingConfig::default(), EngineConfig::seeded(3)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_k2");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (n, g) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| Pipeline::new(PipelineConfig::default()).run(g, 5).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_alg2,
    bench_alg3,
    bench_alg3_parallel,
    bench_rounding,
    bench_pipeline
);
criterion_main!(benches);
