//! Wall-clock scaling of the substrates: the LP solver (T8 companion),
//! the exact branch-and-bound solver, graph generation, and raw engine
//! round throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kw_graph::generators;
use kw_sim::wire::{BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Engine, EngineConfig, Protocol, Status};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_lp_mds");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [32usize, 64, 128] {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::gnp(n, 16.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| kw_lp::domset::solve_lp_mds(g).unwrap())
        });
    }
    group.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_branch_and_bound");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [24usize, 36, 48] {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::gnp(n, 0.12, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| kw_lp::exact::solve_mds(g, &kw_lp::exact::ExactOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_n4096");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("gnp", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(5);
            generators::gnp(4096, 0.002, &mut rng)
        })
    });
    group.bench_function("unit_disk", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(5);
            generators::unit_disk(4096, 0.03, &mut rng)
        })
    });
    group.bench_function("barabasi_albert", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(5);
            generators::barabasi_albert(4096, 3, &mut rng)
        })
    });
    group.finish();
}

/// A minimal broadcast-heavy protocol to measure raw engine throughput.
struct Chatter {
    remaining: u32,
}

#[derive(Clone)]
struct Beep(u64);

impl WireEncode for Beep {
    fn encode(&self, w: &mut BitWriter) {
        w.write_gamma(self.0);
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        r.read_gamma().map(Beep)
    }

    fn encoded_bits(&self) -> usize {
        kw_sim::wire::gamma_len(self.0)
    }
}

impl Protocol for Chatter {
    type Msg = Beep;
    type Output = ();

    fn on_round(&mut self, ctx: &mut Ctx<'_, Beep>) -> Status {
        let sum: u64 = ctx.inbox().iter().map(|(_, m)| m.0).sum();
        if self.remaining == 0 {
            return Status::Halted;
        }
        self.remaining -= 1;
        ctx.broadcast(Beep(sum % 1024));
        Status::Running
    }

    fn finish(self) {}
}

fn bench_engine_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_20_broadcast_rounds");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let mut rng = SmallRng::seed_from_u64(6);
    for n in [1000usize, 4000] {
        let g = generators::gnp(n, 10.0 / n as f64, &mut rng);
        for threads in [1usize, 4] {
            let cfg = EngineConfig {
                threads,
                ..Default::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), n),
                &g,
                |b, g| {
                    b.iter(|| {
                        Engine::new(g, cfg.clone(), |_| Chatter { remaining: 20 })
                            .run()
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simplex,
    bench_exact,
    bench_generators,
    bench_engine_rounds
);
criterion_main!(benches);
