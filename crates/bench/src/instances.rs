//! The bundled real-instance registry (ROADMAP item (g)).
//!
//! The paper motivates its algorithm with ad-hoc/wireless topologies,
//! but synthetic generators cannot express the structured instance
//! families related work evaluates on (DIMACS challenge graphs, sparse
//! real-world classes). This module makes a small set of real DIMACS
//! files first-class: each bundled instance under `instances/` has a
//! registry entry pinning its **checksum** (FNV-1a 64 of the file
//! bytes) and **shape** (`n`, unique undirected edges `m`, max degree
//! `Δ`), and every load validates both — a silently edited or truncated
//! fixture fails loudly instead of skewing a sweep.
//!
//! The bundled files deliberately span the messiness spectrum of real
//! downloads (see the [`io`](kw_graph::io) lenient-parse contract):
//!
//! * `myciel3.col` — a clean coloring instance (the Grötzsch graph);
//!   parses strictly.
//! * `queen5_5.col` — the 5×5 queens graph with every edge listed in
//!   **both orientations**, the convention several challenge families
//!   ship with; lenient-only.
//! * `adhoc25.col` — a unit-disk ad-hoc export with `n <id> <value>`
//!   node lines, duplicated edges, and a stray self-loop; lenient-only.
//!
//! [`suite`] wraps all bundled instances as [`Workload::Dimacs`]
//! entries, ready for any experiment matrix; they cache, persist,
//! resume, and regress-gate exactly like generated workloads.

use std::path::{Path, PathBuf};

use kw_graph::io::DimacsStats;
use kw_graph::CsrGraph;

use crate::workloads::Workload;

/// Registry entry of one bundled instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstanceMeta {
    /// Registry name (the file stem; what `dimacs(<name>)` labels show).
    pub name: &'static str,
    /// Path relative to the workspace root.
    pub file: &'static str,
    /// FNV-1a 64 checksum of the file bytes.
    pub checksum: u64,
    /// Node count.
    pub n: usize,
    /// Unique undirected edges after lenient cleanup.
    pub m: usize,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
}

/// Every instance bundled under `instances/`.
pub const BUNDLED: &[InstanceMeta] = &[
    InstanceMeta {
        name: "myciel3",
        file: "instances/myciel3.col",
        checksum: 0x56f3_d2f9_7aba_f8d3,
        n: 11,
        m: 20,
        max_degree: 5,
    },
    InstanceMeta {
        name: "queen5_5",
        file: "instances/queen5_5.col",
        checksum: 0x12e7_276d_5b86_f1e0,
        n: 25,
        m: 160,
        max_degree: 16,
    },
    InstanceMeta {
        name: "adhoc25",
        file: "instances/adhoc25.col",
        checksum: 0x5e63_971e_d921_a7b3,
        n: 25,
        m: 59,
        max_degree: 8,
    },
];

/// Looks a bundled instance up by registry name.
pub fn find(name: &str) -> Option<&'static InstanceMeta> {
    BUNDLED.iter().find(|m| m.name == name)
}

/// FNV-1a 64 of `bytes` — the registry's checksum function. Not
/// cryptographic; it guards against accidental edits and truncation,
/// which is what a fixture registry needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Resolves an instance path: absolute paths and paths that exist
/// relative to the current directory are used as-is; otherwise the path
/// is tried under `KW_INSTANCES_ROOT` (if set), then under the
/// workspace root recorded at compile time — so tests, benches, and
/// binaries all find `instances/` regardless of their working
/// directory, and a relocated binary can point `KW_INSTANCES_ROOT` at
/// wherever the fixture tree was installed.
pub fn resolve(path: &Path) -> PathBuf {
    if path.is_absolute() || path.exists() {
        return path.to_path_buf();
    }
    let roots = [
        std::env::var_os("KW_INSTANCES_ROOT").map(PathBuf::from),
        // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two
        // up. Baked in at compile time, hence the env override above.
        Some(Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")),
    ];
    for root in roots.into_iter().flatten() {
        let candidate = root.join(path);
        if candidate.exists() {
            return candidate;
        }
    }
    path.to_path_buf()
}

impl InstanceMeta {
    /// The location of this registry entry's own bundled file — resolved
    /// against `KW_INSTANCES_ROOT` / the workspace root only, **never**
    /// the current directory. This is what the load-time validation
    /// guard compares against: a user's file at a cwd-relative
    /// `instances/myciel3.col` is their graph, not this fixture, and
    /// must not be checksum-validated as if it were.
    pub fn registry_path(&self) -> PathBuf {
        let rel = Path::new(self.file);
        if let Some(root) = std::env::var_os("KW_INSTANCES_ROOT") {
            let candidate = PathBuf::from(root).join(rel);
            if candidate.exists() {
                return candidate;
            }
        }
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(rel)
    }

    /// The bundled instance as a workload.
    pub fn workload(&self) -> Workload {
        Workload::Dimacs {
            name: self.name.to_string(),
            path: PathBuf::from(self.file),
        }
    }

    /// Checks loaded file bytes and the parsed graph against this
    /// registry entry. Returns a human-readable reason on mismatch.
    ///
    /// # Errors
    ///
    /// A description of the first mismatch (checksum, then shape).
    pub fn validate(&self, bytes: &[u8], graph: &CsrGraph) -> Result<(), String> {
        let checksum = fnv1a(bytes);
        if checksum != self.checksum {
            return Err(format!(
                "checksum mismatch for {}: registry has {:#018x}, file has {checksum:#018x} \
                 (edited or truncated fixture?)",
                self.file, self.checksum
            ));
        }
        let live = (graph.len(), graph.num_edges(), graph.max_degree());
        let expected = (self.n, self.m, self.max_degree);
        if live != expected {
            return Err(format!(
                "shape mismatch for {}: registry has (n, m, Δ) = {expected:?}, parsed {live:?}",
                self.file
            ));
        }
        Ok(())
    }
}

/// Loads and fully validates one bundled instance, returning the graph
/// together with the lenient parser's cleanup counters. This is the
/// registry-file load pipeline (read → UTF-8 → lenient parse →
/// checksum + shape validation) shared by the smoke binary and anything
/// else that wants the [`DimacsStats`] alongside the graph;
/// `Workload::Dimacs` builds go through the same validation for
/// registry files but accept arbitrary external paths too.
///
/// # Errors
///
/// A human-readable description of the first failure (I/O, encoding,
/// parse, or registry mismatch).
pub fn load(meta: &InstanceMeta) -> Result<(CsrGraph, DimacsStats), String> {
    let path = meta.registry_path();
    let bytes = std::fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let text =
        std::str::from_utf8(&bytes).map_err(|_| format!("{} is not UTF-8", path.display()))?;
    let (graph, stats) = kw_graph::io::parse_dimacs_lenient(text)
        .map_err(|e| format!("parse {}: {e}", meta.file))?;
    meta.validate(&bytes, &graph)
        .map_err(|reason| format!("validate {}: {reason}", meta.file))?;
    Ok((graph, stats))
}

/// All bundled instances as workloads, registry order.
pub fn suite() -> Vec<Workload> {
    BUNDLED.iter().map(InstanceMeta::workload).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bundled_instance_loads_and_validates() {
        for meta in BUNDLED {
            let w = meta.workload();
            let g = w.try_build(0).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(g.len(), meta.n, "{}", meta.name);
            assert_eq!(g.num_edges(), meta.m, "{}", meta.name);
            assert_eq!(g.max_degree(), meta.max_degree, "{}", meta.name);
            assert_eq!(w.label(), format!("dimacs({})", meta.name));
        }
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        for meta in BUNDLED {
            assert_eq!(find(meta.name).unwrap(), meta);
        }
        assert!(find("no_such_instance").is_none());
        let mut names: Vec<_> = BUNDLED.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BUNDLED.len());
    }

    #[test]
    fn corrupted_fixture_fails_checksum_validation() {
        let meta = find("myciel3").unwrap();
        let path = resolve(Path::new(meta.file));
        let mut bytes = std::fs::read(path).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        let (graph, _stats) = kw_graph::io::parse_dimacs_lenient(&text).unwrap();
        meta.validate(&bytes, &graph).unwrap();
        // Flip one byte: the checksum must catch it.
        let last = bytes.len() - 2;
        bytes[last] ^= 1;
        let err = meta.validate(&bytes, &graph).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn shape_validation_catches_wrong_graphs() {
        let meta = find("myciel3").unwrap();
        let path = resolve(Path::new(meta.file));
        let bytes = std::fs::read(path).unwrap();
        let wrong = kw_graph::generators::grid(3, 3);
        let err = meta.validate(&bytes, &wrong).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn the_messy_fixtures_exercise_the_lenient_paths() {
        // queen5_5 ships both orientations; adhoc25 ships node lines,
        // duplicates, and a self-loop. If these stats drift the fixtures
        // stopped covering the lenient contract.
        let read = |name: &str| {
            let meta = find(name).unwrap();
            let text = std::fs::read_to_string(resolve(Path::new(meta.file))).unwrap();
            kw_graph::io::parse_dimacs_lenient(&text).unwrap().1
        };
        let queen = read("queen5_5");
        assert_eq!(queen.edge_lines, 320);
        assert_eq!(queen.duplicate_edges, 160);
        let adhoc = read("adhoc25");
        assert_eq!(adhoc.self_loops, 1);
        assert!(adhoc.duplicate_edges > 0);
        assert_eq!(adhoc.skipped_lines, 25); // the n-lines
                                             // myciel3 is clean: strict parse agrees with lenient.
        let meta = find("myciel3").unwrap();
        let text = std::fs::read_to_string(resolve(Path::new(meta.file))).unwrap();
        let strict = kw_graph::io::parse_dimacs(&text).unwrap();
        assert_eq!(strict.num_edges(), meta.m);
    }
}
