//! Ablation A1: Algorithm 1 *without* the deterministic fallback
//! (lines 5–6).
//!
//! The random draw alone leaves each node uncovered with probability up to
//! `1/(δ⁽¹⁾+1)` (the paper's `q_i` bound in Theorem 3's proof). This
//! ablation measures how often coverage actually fails without the
//! fallback — demonstrating both why lines 5–6 exist and that the
//! measured failure mass matches the `E[Y] ≤ Σ 1/(δ⁽¹⁾+1)` accounting.

use kw_bench::stats;
use kw_bench::table::Table;
use kw_bench::workloads::small_suite;
use kw_core::rounding::{run_rounding, RoundingConfig};
use kw_sim::EngineConfig;

fn main() {
    println!("A1 — rounding without the fallback (lines 5–6): coverage failures\n");
    let trials = 200u64;
    let mut table = Table::new([
        "workload",
        "E[uncovered]",
        "bound Σ1/(δ¹+1)",
        "P(any uncovered)",
        "E|DS| no-fb",
        "E|DS| with-fb",
    ]);
    for w in small_suite() {
        let g = w.build(1);
        let lp = kw_lp::domset::solve_lp_mds(&g).expect("LP solvable");
        let no_fb = RoundingConfig {
            skip_fallback: true,
            ..Default::default()
        };
        let with_fb = RoundingConfig::default();
        let mut uncovered = Vec::new();
        let mut failures = 0u64;
        let mut sizes_no = Vec::new();
        let mut sizes_with = Vec::new();
        for seed in 0..trials {
            let a = run_rounding(&g, &lp.x, no_fb, EngineConfig::seeded(seed)).expect("runs");
            let miss = a.set.undominated(&g).len();
            uncovered.push(miss as f64);
            failures += u64::from(miss > 0);
            sizes_no.push(a.set.len() as f64);
            let b = run_rounding(&g, &lp.x, with_fb, EngineConfig::seeded(seed)).expect("runs");
            assert!(b.set.is_dominating(&g));
            sizes_with.push(b.set.len() as f64);
        }
        // E[Y] bound from Theorem 3's proof: Σ 1/(δ⁽¹⁾+1) — Lemma 1's value.
        let ey_bound = kw_lp::bounds::lemma1_bound(&g);
        table.row([
            w.label(),
            format!("{:.2}", stats::mean(&uncovered)),
            format!("{ey_bound:.2}"),
            format!("{:.2}", failures as f64 / trials as f64),
            format!("{:.1}", stats::mean(&sizes_no)),
            format!("{:.1}", stats::mean(&sizes_with)),
        ]);
        assert!(
            stats::mean(&uncovered) <= ey_bound + 3.0 * stats::std_dev(&uncovered),
            "uncovered mass exceeds the q_i accounting"
        );
    }
    println!("{table}");
    println!("Findings: without lines 5–6 coverage fails in a constant fraction of runs");
    println!("(P(any uncovered) ≫ 0), while E[uncovered] ≤ Σ1/(δ¹+1) matches the E[Y] term");
    println!("of Theorem 3's proof — the fallback converts exactly that mass into members.");
    println!("Degenerate cases are starkest: an isolated node has p = x·ln(0+1) = 0 and is");
    println!("*never* drawn — only the fallback covers it (the udg row's permanent miss).");
}
