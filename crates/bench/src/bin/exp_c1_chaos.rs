//! Experiment C1 — the chaos plane: how the KW pipeline degrades as
//! chaos intensity rises, and what churn costs.
//!
//! Three questions, one ladder of chaos clauses (the same grammar the
//! sweep specs, the run store, and `kw-serve` share):
//!
//! 1. **Quality degradation** — E|DS|, the Lemma-1 ratio, and
//!    P(dominating) per chaos level, from iid drops through burst loss,
//!    crashes, byzantine senders, and the full combination.
//! 2. **Message overhead** — the table reports each level's message
//!    count against the reliable baseline. The lock-step broadcast
//!    schedule dominates, so the overhead stays within a few percent;
//!    chaos shows up in *quality*, not in traffic.
//! 3. **Churn: re-solve vs continue in place** — under a scripted churn
//!    clause, compare continuing the protocol across topology changes
//!    (paying one CSR-plane rebuild per event) against re-solving the
//!    final graph from scratch.
//!
//! Every chaos cell flows through the same [`SweepSession`] as reliable
//! experiments: persisted to a JSONL run store (`target/exp_c1_runs.jsonl`
//! or `KW_RUN_STORE`) keyed by canonical chaos spec, so re-running this
//! binary replays every cell from the store — the binary asserts the
//! 100% cache-hit resume itself.

use kw_bench::table::Table;
use kw_bench::workloads::Workload;
use kw_core::solver::{DsSolver, ExperimentRunner, SolveContext};
use kw_results::pipeline::SweepSession;
use kw_results::summary::Summary;
use kw_sim::ChaosPlan;

/// The chaos ladder: label, clause (sweep grammar, `""` = reliable).
const LEVELS: &[(&str, &str)] = &[
    ("reliable", ""),
    ("drop 5%", "drop=0.05,seed=11"),
    ("drop 20%", "drop=0.2,seed=11"),
    ("burst", "burst=r1-4@0.9"),
    ("crash", "crash=5@r2"),
    ("byzantine", "byz=1+2"),
    ("full mix", "chaos:drop=0.1,burst=r3-5@0.9,crash=7@r2,byz=3"),
];

const SEEDS: u64 = 8;

fn main() {
    println!("C1 — chaos plane: degradation and overhead vs chaos intensity ({SEEDS} seeds)\n");
    let suite = [
        Workload::Grid { side: 12 },
        Workload::Gnp { n: 144, p: 0.05 },
    ];
    let store_path =
        std::env::var("KW_RUN_STORE").unwrap_or_else(|_| "target/exp_c1_runs.jsonl".to_string());
    let mut session = SweepSession::open(&store_path).expect("open run store");
    if session.replayed() > 0 {
        println!(
            "resuming: {} records replayed from {store_path}\n",
            session.replayed()
        );
    }
    let cache = session.cache();
    let workloads: Vec<(String, kw_graph::CsrGraph)> = suite
        .iter()
        .map(|w| {
            let g = cache.graph(&w.label(), 2, || w.build(2));
            (w.label(), (*g).clone())
        })
        .collect();
    let registry = kw_baselines::registry();
    let solvers = registry.build_all(["kw:k=3"]).expect("kw registered");

    // --- the ladder: one sweep per chaos level through one session ------
    let mut all_records = Vec::new();
    let mut reliable_msgs: Vec<f64> = Vec::new(); // per-workload baseline
    let mut table = Table::new([
        "chaos",
        "workload",
        "E|DS|",
        "E|DS|/lemma1",
        "P(dominating)",
        "E[msgs]",
        "msg overhead",
    ]);
    for (label, clause) in LEVELS {
        let faults = ChaosPlan::parse(clause).expect("ladder clause parses");
        let runner = ExperimentRunner::new().workers(0).context(SolveContext {
            faults,
            ..SolveContext::default()
        });
        let out = session
            .run(&runner, &solvers, &workloads, 0..SEEDS, |_| {})
            .expect("chaos sweep runs");
        if let Some(e) = &out.store_error {
            eprintln!("warning: run store append failed ({e})");
        }
        for (i, cell) in out.cells.iter().enumerate() {
            if *clause == LEVELS[0].1 {
                reliable_msgs.push(cell.messages.mean);
            }
            let overhead = cell.messages.mean / reliable_msgs[i] - 1.0;
            table.row([
                label.to_string(),
                cell.workload.clone(),
                format!("{:.1}", cell.size.mean),
                format!("{:.2}", cell.ratio_vs_lemma1.mean),
                format!("{:.2}", 1.0 - cell.failures as f64 / cell.runs as f64),
                format!("{:.0}", cell.messages.mean),
                format!("{:+.0}%", overhead * 100.0),
            ]);
        }
        all_records.extend(out.records);
    }
    println!("{table}");

    // --- churn: continue in place vs re-solve from scratch --------------
    println!("churn: continue-in-place vs re-solve (grid 12x12, {SEEDS} seeds)\n");
    let churn_plan = ChaosPlan::parse("churn=r1re0-1+r2l10+r3ae2-25").expect("churn clause");
    let g = &workloads[0].1;
    let churned = churn_plan
        .churned_graph(g)
        .expect("plan carries churn events");
    let solver = &solvers[0];
    let mut churn_table = Table::new(["strategy", "E|DS|", "P(dominating)", "E[msgs]", "rebuilds"]);
    let (mut sizes, mut msgs, mut doms, mut rebuilds) = (0.0, 0.0, 0u64, 0u64);
    for seed in 0..SEEDS {
        let ctx = SolveContext {
            seed,
            faults: churn_plan.clone(),
            ..SolveContext::default()
        };
        let report = solver.solve(g, &ctx).expect("in-place run");
        sizes += report.size() as f64;
        msgs += report.messages() as f64;
        rebuilds += report.metrics.graph_rebuilds;
        // The certificate grades against the *churned* topology — the
        // graph the answer must dominate after the events.
        doms += u64::from(report.certificate.as_ref().expect("certs on").dominates);
    }
    churn_table.row([
        "continue in place".to_string(),
        format!("{:.1}", sizes / SEEDS as f64),
        format!("{:.2}", doms as f64 / SEEDS as f64),
        format!("{:.0}", msgs / SEEDS as f64),
        format!("{:.1}", rebuilds as f64 / SEEDS as f64),
    ]);
    let (mut sizes, mut msgs, mut doms) = (0.0, 0.0, 0u64);
    for seed in 0..SEEDS {
        // Re-solving pays for the original run *and* a fresh run on the
        // final topology (a fleet that re-solves per event pays more).
        let ctx = SolveContext::seeded(seed);
        let before = solver.solve(g, &ctx).expect("original run");
        let after = solver.solve(&churned, &ctx).expect("re-solve");
        sizes += after.size() as f64;
        msgs += (before.messages() + after.messages()) as f64;
        doms += u64::from(after.certificate.as_ref().expect("certs on").dominates);
    }
    churn_table.row([
        "re-solve final graph".to_string(),
        format!("{:.1}", sizes / SEEDS as f64),
        format!("{:.2}", doms as f64 / SEEDS as f64),
        format!("{:.0}", msgs / SEEDS as f64),
        "0.0".to_string(),
    ]);
    println!("{churn_table}");

    // --- resume: every chaos cell must replay from the store ------------
    drop(session); // release the store lock so a fresh session can open it
    let mut resumed = SweepSession::open(&store_path).expect("reopen run store");
    let mut replayed_cells = 0u64;
    for (_, clause) in LEVELS {
        let faults = ChaosPlan::parse(clause).expect("ladder clause parses");
        let runner = ExperimentRunner::new().workers(0).context(SolveContext {
            faults,
            ..SolveContext::default()
        });
        let out = resumed
            .run(&runner, &solvers, &workloads, 0..SEEDS, |_| {})
            .expect("resumed sweep runs");
        assert_eq!(out.solved, 0, "resume must not re-solve any chaos cell");
        replayed_cells += out.cached;
    }
    println!("resume check: {replayed_cells} cells served from {store_path} with 0 re-solves\n");

    let summary = Summary::from_records(&all_records);
    println!("{}", summary.to_markdown());
    println!("Findings: quality degrades smoothly with chaos intensity while message counts");
    println!("stay nearly flat (the lock-step broadcast schedule dominates); byzantine");
    println!("payloads are rejected at the wire, never delivered as panics; and continuing");
    println!("across churn costs plane rebuilds plus quality, while re-solving the final");
    println!("graph pays a full extra protocol run in messages for a cleaner answer.");
}
