//! Experiment T2 (Theorem 5): Algorithm 3's (Δ unknown) LP approximation
//! ratio and round count, plus the price of not knowing Δ (column
//! `vs alg2` = Σx_alg3 / Σx_alg2).
//!
//! Runs through the `DsSolver` trait: the `kw:k=K` solver's report
//! carries Algorithm 3's fractional solution and stage metrics; the
//! `vs alg2` column uses the centralized Algorithm 2 reference oracle.

use kw_bench::table::Table;
use kw_bench::workloads::small_suite;
use kw_core::solver::{SolveContext, SolverRegistry};
use kw_core::{alg2, math};

fn main() {
    println!("T2 — Theorem 5: Algorithm 3 (Δ unknown), LP approximation ratio & rounds\n");
    let registry = SolverRegistry::with_core_solvers();
    let mut table = Table::new([
        "workload", "Δ", "k", "Σx", "ratio", "bound", "vs alg2", "rounds", "4k²+2k",
    ]);
    for w in small_suite() {
        let g = w.build(1);
        let lp = kw_lp::domset::solve_lp_mds(&g).expect("LP solvable at suite sizes");
        for k in [1u32, 2, 3, 4, 6, 8] {
            let solver = registry.build(&format!("kw:k={k}")).expect("kw registered");
            let report = solver
                .solve(&g, &SolveContext::seeded(0))
                .expect("alg3 runs");
            let x = report
                .fractional
                .as_ref()
                .expect("pipeline exposes the fractional stage");
            assert!(x.is_feasible(&g), "infeasible output");
            let val = x.objective();
            let a2 = alg2::reference_alg2_value(&g, k).expect("alg2 reference");
            let ratio = val / lp.value;
            let bound = math::alg3_lp_bound(k, g.max_degree());
            assert!(ratio <= bound + 1e-6, "bound violated: {ratio} > {bound}");
            table.row([
                w.label(),
                g.max_degree().to_string(),
                k.to_string(),
                format!("{val:.2}"),
                format!("{ratio:.3}"),
                format!("{bound:.1}"),
                format!("{:.2}", val / a2),
                report.stages[0].metrics.rounds.to_string(),
                math::alg3_rounds(k).to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("PASS: every ratio ≤ its Theorem-5 bound; rounds = 4k²+2k exactly.");
    println!("Shape: `vs alg2` hovers around 1 (local γ-estimates can go either way on a");
    println!("given instance) while Algorithm 3's *guarantee* is the larger Theorem-5 bound.");
}
