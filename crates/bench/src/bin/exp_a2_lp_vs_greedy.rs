//! Ablation A2 (Section 6 discussion): the LP-relaxation route (KW)
//! versus direct greedy parallelization (JRS) at an **equal round
//! budget**.
//!
//! The paper argues LP relaxation "allows to postpone symmetry breaking to
//! the end". This experiment grants KW the same number of rounds JRS
//! consumed on each instance (choosing the largest k that fits) and
//! compares set sizes: as n grows, JRS's round bill grows while KW's
//! fixed-k quality is unchanged — the crossover the paper's motivation
//! predicts for large, fast-changing networks.
//!
//! Both contenders run through the `DsSolver` trait, and every
//! per-instance sweep goes through a persistent [`SweepSession`]
//! (`target/exp_a2_runs.jsonl`, or `KW_RUN_STORE`): a re-run — or a run
//! killed between instances and restarted — replays the store and only
//! solves cells it never recorded.

use kw_bench::denominators::best_denominator;
use kw_bench::table::Table;
use kw_bench::workloads::Workload;
use kw_core::math;
use kw_core::solver::{ExperimentRunner, SolverRegistry};
use kw_results::pipeline::SweepSession;

fn main() {
    println!("A2 — LP-relaxation (KW) vs greedy parallelization (JRS) at equal rounds\n");
    let registry = {
        let mut r = SolverRegistry::with_core_solvers();
        kw_baselines::register_baselines(&mut r);
        r
    };
    let store_path =
        std::env::var("KW_RUN_STORE").unwrap_or_else(|_| "target/exp_a2_runs.jsonl".to_string());
    let mut session = SweepSession::open(&store_path).expect("open run store");
    if session.replayed() > 0 {
        println!(
            "resuming: {} records replayed from {store_path}\n",
            session.replayed()
        );
    }
    let suite = [
        Workload::Gnp { n: 128, p: 0.06 },
        Workload::Gnp { n: 512, p: 0.02 },
        Workload::Gnp { n: 2048, p: 0.006 },
        Workload::Gnp { n: 8192, p: 0.0017 },
        Workload::UnitDisk {
            n: 1024,
            radius: 0.05,
        },
    ];
    let seeds = 6u64;
    let runner = ExperimentRunner::new();
    let mut table = Table::new([
        "workload",
        "n",
        "JRS rounds",
        "JRS E|DS|",
        "k fitting budget",
        "KW rounds",
        "KW E|DS|",
        "KW/JRS size",
        "denom kind",
    ]);
    let (mut solved, mut cached) = (0u64, 0u64);
    for w in suite {
        let g = w.build(9);
        let denom = best_denominator(&g, 0, 256);
        let workloads = vec![(w.label(), g)];
        let jrs = registry.build("jrs").expect("jrs registered");
        let jrs_out = session
            .run(
                &runner,
                std::slice::from_ref(&jrs),
                &workloads,
                0..seeds,
                |_| {},
            )
            .expect("jrs sweep");
        let jrs_cell = &jrs_out.cells[0];
        assert_eq!(jrs_cell.failures, 0);
        let budget = jrs_cell.rounds.mean as usize;
        // Largest k whose pipeline (4k² + 2k + 2 rounds) fits the budget.
        let k = (1u32..=32)
            .take_while(|&k| math::alg3_rounds(k) + 2 <= budget)
            .last()
            .unwrap_or(1);
        let kw = registry.build(&format!("kw:k={k}")).expect("kw registered");
        let kw_out = session
            .run(
                &runner,
                std::slice::from_ref(&kw),
                &workloads,
                0..seeds,
                |_| {},
            )
            .expect("kw sweep");
        let kw_cell = &kw_out.cells[0];
        assert_eq!(kw_cell.failures, 0);
        solved += jrs_out.solved + kw_out.solved;
        cached += jrs_out.cached + kw_out.cached;
        table.row([
            w.label(),
            kw_cell.n.to_string(),
            format!("{budget}"),
            format!("{:.1}", jrs_cell.size.mean),
            k.to_string(),
            format!("{:.0}", kw_cell.rounds.max),
            format!("{:.1}", kw_cell.size.mean),
            format!("{:.2}", kw_cell.size.mean / jrs_cell.size.mean),
            denom.kind.label().to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "run store: {store_path} — {solved} cells solved, {cached} served from the store/cache"
    );
    println!("Shape: the KW/JRS size ratio shrinks as n grows — a fixed round budget buys");
    println!("JRS fewer greedy phases on larger graphs, while KW's k (and quality) rises.");
}
