//! Ablation A2 (Section 6 discussion): the LP-relaxation route (KW)
//! versus direct greedy parallelization (JRS) at an **equal round
//! budget**.
//!
//! The paper argues LP relaxation "allows to postpone symmetry breaking to
//! the end". This experiment grants KW the same number of rounds JRS
//! consumed on each instance (choosing the largest k that fits) and
//! compares set sizes: as n grows, JRS's round bill grows while KW's
//! fixed-k quality is unchanged — the crossover the paper's motivation
//! predicts for large, fast-changing networks.

use kw_bench::denominators::best_denominator;
use kw_bench::stats;
use kw_bench::table::Table;
use kw_bench::workloads::Workload;
use kw_core::{math, Pipeline, PipelineConfig};

fn main() {
    println!("A2 — LP-relaxation (KW) vs greedy parallelization (JRS) at equal rounds\n");
    let suite = [
        Workload::Gnp { n: 128, p: 0.06 },
        Workload::Gnp { n: 512, p: 0.02 },
        Workload::Gnp { n: 2048, p: 0.006 },
        Workload::Gnp { n: 8192, p: 0.0017 },
        Workload::UnitDisk { n: 1024, radius: 0.05 },
    ];
    let seeds = 6u64;
    let mut table = Table::new([
        "workload", "n", "JRS rounds", "JRS E|DS|", "k fitting budget", "KW rounds", "KW E|DS|",
        "KW/JRS size", "denom kind",
    ]);
    for w in suite {
        let g = w.build(9);
        let denom = best_denominator(&g, 0, 256);
        let mut jrs_sizes = Vec::new();
        let mut jrs_rounds = Vec::new();
        for seed in 0..seeds {
            let run = kw_baselines::jrs::run_jrs(&g, seed).expect("jrs runs");
            assert!(run.set.is_dominating(&g));
            jrs_sizes.push(run.set.len() as f64);
            jrs_rounds.push(run.metrics.rounds as f64);
        }
        let budget = stats::mean(&jrs_rounds) as usize;
        // Largest k whose pipeline (4k² + 2k + 2 rounds) fits the budget.
        let k = (1u32..=32)
            .take_while(|&k| math::alg3_rounds(k) + 2 <= budget)
            .last()
            .unwrap_or(1);
        let mut kw_sizes = Vec::new();
        let mut kw_rounds = 0usize;
        for seed in 0..seeds {
            let out = Pipeline::new(PipelineConfig { k, ..Default::default() })
                .run(&g, seed)
                .expect("pipeline runs");
            assert!(out.dominating_set.is_dominating(&g));
            kw_sizes.push(out.dominating_set.len() as f64);
            kw_rounds = out.total_rounds();
        }
        table.row([
            w.label(),
            g.len().to_string(),
            format!("{budget}"),
            format!("{:.1}", stats::mean(&jrs_sizes)),
            k.to_string(),
            kw_rounds.to_string(),
            format!("{:.1}", stats::mean(&kw_sizes)),
            format!("{:.2}", stats::mean(&kw_sizes) / stats::mean(&jrs_sizes)),
            denom.kind.label().to_string(),
        ]);
    }
    println!("{table}");
    println!("Shape: the KW/JRS size ratio shrinks as n grows — a fixed round budget buys");
    println!("JRS fewer greedy phases on larger graphs, while KW's k (and quality) rises.");
}
