//! Experiment T5 (Theorem 6, headline): the full pipeline against every
//! baseline — set size, rounds, and messages.
//!
//! Reproduction target (shape, not absolute numbers): KW is the only
//! algorithm whose round count is **independent of n**; its set size lands
//! between greedy/JRS (better quality, more rounds as n grows) and the
//! trivial baseline, within the Theorem-6 factor of the lower bound.

use kw_bench::denominators::best_denominator;
use kw_bench::stats;
use kw_bench::table::Table;
use kw_bench::workloads::Workload;
use kw_core::{Pipeline, PipelineConfig};

fn main() {
    println!("T5 — Theorem 6: end-to-end comparison (10 seeds per randomized algorithm)\n");
    let suite = [
        Workload::Gnp { n: 128, p: 0.05 },
        Workload::Gnp { n: 512, p: 0.015 },
        Workload::Gnp { n: 2048, p: 0.004 },
        Workload::UnitDisk { n: 512, radius: 0.07 },
        Workload::BarabasiAlbert { n: 512, m: 3 },
        Workload::Grid { side: 23 },
    ];
    let seeds = 10u64;
    let mut table = Table::new([
        "workload", "n", "Δ", "denom", "algorithm", "E|DS|", "ratio", "rounds",
    ]);
    for w in suite {
        let g = w.build(2);
        let denom = best_denominator(&g, 64, 300);
        let mut add = |alg: &str, size: f64, rounds: String| {
            table.row([
                w.label(),
                g.len().to_string(),
                g.max_degree().to_string(),
                denom.kind.label().to_string(),
                alg.to_string(),
                format!("{size:.1}"),
                format!("{:.2}", size / denom.value),
                rounds,
            ]);
        };
        for k in [2u32, 3, 4] {
            let mut sizes = Vec::new();
            let mut rounds = 0usize;
            for seed in 0..seeds {
                let out = Pipeline::new(PipelineConfig { k, ..Default::default() })
                    .run(&g, seed)
                    .expect("pipeline runs");
                assert!(out.dominating_set.is_dominating(&g));
                sizes.push(out.dominating_set.len() as f64);
                rounds = out.total_rounds();
            }
            add(&format!("KW k={k}"), stats::mean(&sizes), rounds.to_string());
        }
        let mut jrs_sizes = Vec::new();
        let mut jrs_rounds = Vec::new();
        for seed in 0..seeds {
            let run = kw_baselines::jrs::run_jrs(&g, seed).expect("jrs runs");
            assert!(run.set.is_dominating(&g));
            jrs_sizes.push(run.set.len() as f64);
            jrs_rounds.push(run.metrics.rounds as f64);
        }
        add(
            "JRS/LRG [11]",
            stats::mean(&jrs_sizes),
            format!("{:.0}", stats::mean(&jrs_rounds)),
        );
        let mut mis_sizes = Vec::new();
        let mut mis_rounds = Vec::new();
        for seed in 0..seeds {
            let run = kw_baselines::luby_mis::run_luby_mis(&g, seed).expect("mis runs");
            mis_sizes.push(run.set.len() as f64);
            mis_rounds.push(run.metrics.rounds as f64);
        }
        add(
            "Luby MIS",
            stats::mean(&mis_sizes),
            format!("{:.0}", stats::mean(&mis_rounds)),
        );
        add("greedy (seq)", kw_baselines::greedy::greedy_mds(&g).len() as f64, "-".into());
        add("trivial", g.len() as f64, "0".into());
    }
    println!("{table}");
    println!("Shape checks: KW rounds are constant per k while JRS/MIS rounds grow with n;");
    println!("KW ratio sits between greedy and trivial and shrinks as k grows (Theorem 6).");
}
