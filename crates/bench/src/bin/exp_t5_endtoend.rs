//! Experiment T5 (Theorem 6, headline): the full pipeline against every
//! baseline — set size, rounds, and messages.
//!
//! Reproduction target (shape, not absolute numbers): KW is the only
//! algorithm whose round count is **independent of n**; its set size lands
//! between greedy/JRS (better quality, more rounds as n grows) and the
//! trivial baseline, within the Theorem-6 factor of the lower bound.
//!
//! Every algorithm runs through the **streaming results pipeline**: two
//! overlapping sweeps (a KW-only k-trend pilot, then the full matrix)
//! share one [`SweepSession`], which streams per-cell progress while the
//! matrix executes, persists every solved cell to a JSONL run store
//! (`target/exp_t5_runs.jsonl`, or `KW_RUN_STORE`), and on re-launch
//! replays the store so only missing cells solve — kill this binary
//! mid-sweep and restart it to watch the resume. The final table is the
//! store summary (mean/p50/p95 over seeds; ratio is vs the Lemma-1
//! bound), rendered as markdown.

use std::io::Write as _;

use kw_bench::workloads::Workload;
use kw_core::solver::{ExperimentRunner, RunEvent};
use kw_graph::CsrGraph;
use kw_results::pipeline::SweepSession;
use kw_results::summary::Summary;

/// A `\r`-rewriting progress meter: cell-by-cell feedback on stderr
/// without scrolling the table off the screen.
fn progress_meter(tag: &'static str) -> impl FnMut(&RunEvent) + Send {
    let (mut done, mut cached, mut total) = (0usize, 0usize, 0usize);
    move |ev| {
        match ev {
            RunEvent::SweepStarted { runs, .. } => total = *runs,
            RunEvent::CellCached { .. } => {
                done += 1;
                cached += 1;
            }
            _ if ev.is_terminal() => done += 1,
            _ => return,
        }
        eprint!("\r[{tag}] {done}/{total} cells ({cached} cached)");
        if done == total {
            eprintln!();
        }
        let _ = std::io::stderr().flush();
    }
}

fn main() {
    println!("T5 — Theorem 6: end-to-end comparison (10 seeds per randomized algorithm)\n");
    // Workload specs on the CLI override the default suite (the spec
    // grammar is documented in kw_bench::workloads), so instance files
    // sweep through the same pipeline:
    //   exp_t5_endtoend dimacs:instances/queen5_5.col gnp:n=128,p=0.05
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite: Vec<Workload> = if args.is_empty() {
        vec![
            Workload::Gnp { n: 128, p: 0.05 },
            Workload::Gnp { n: 512, p: 0.015 },
            Workload::Gnp { n: 2048, p: 0.004 },
            Workload::UnitDisk {
                n: 512,
                radius: 0.07,
            },
            Workload::BarabasiAlbert { n: 512, m: 3 },
            Workload::Grid { side: 23 },
        ]
    } else {
        kw_bench::workloads::parse_suite(&args).unwrap_or_else(|e| panic!("{e}"))
    };
    let store_path =
        std::env::var("KW_RUN_STORE").unwrap_or_else(|_| "target/exp_t5_runs.jsonl".to_string());
    let mut session = SweepSession::open(&store_path).expect("open run store");
    if session.replayed() > 0 {
        println!(
            "resuming: {} records replayed from {store_path}\n",
            session.replayed()
        );
    }
    // Graphs come from the session cache's (workload, seed) memo — built
    // once, shared by both sweeps.
    let cache = session.cache();
    let workloads: Vec<(String, CsrGraph)> = suite
        .iter()
        .map(|w| {
            let g = cache.graph(&w.label(), 2, || w.build(2));
            (w.label(), (*g).clone())
        })
        .collect();
    let registry = kw_baselines::registry();
    let runner = ExperimentRunner::new().workers(0); // results are scheduling-independent

    // Sweep 1 — KW k-trend pilot (Theorem 6: quality improves with k).
    let kw_solvers = registry
        .build_all(["kw:k=2", "kw:k=3", "kw:k=4"])
        .expect("kw specs registered");
    let pilot = session
        .run(
            &runner,
            &kw_solvers,
            &workloads,
            0..10,
            progress_meter("pilot"),
        )
        .expect("pilot runs");
    println!("k-trend (mean |DS| per workload; must shrink as k grows):");
    for (label, _) in &workloads {
        let sizes: Vec<String> = pilot
            .cells
            .iter()
            .filter(|c| &c.workload == label)
            .map(|c| format!("{}={:.1}", c.solver, c.size.mean))
            .collect();
        println!("  {label}: {}", sizes.join("  "));
    }
    println!();

    // Sweep 2 — the full matrix. Overlaps sweep 1 on every KW cell; only
    // the baselines are actually solved (on a resumed store, nothing is).
    let solvers = registry
        .build_all([
            "kw:k=2", "kw:k=3", "kw:k=4", "jrs", "luby-mis", "greedy", "trivial",
        ])
        .expect("all specs registered");
    let full = session
        .run(
            &runner,
            &solvers,
            &workloads,
            0..10,
            progress_meter("matrix"),
        )
        .expect("matrix runs");
    if let Some(e) = &full.store_error {
        eprintln!(
            "warning: run store append failed ({e}); results below are complete but not all persisted"
        );
    }
    for cell in &full.cells {
        assert_eq!(cell.failures, 0, "reliable network never fails to dominate");
    }

    // The table is the store summary of exactly this sweep's records
    // (ratio = E|DS| / Lemma-1 bound, an upper bound on the true ratio).
    let summary = Summary::from_records(&full.records);
    println!("{}", summary.to_markdown());

    let kw_cells_total = (kw_solvers.len() * workloads.len() * 10) as u64;
    assert!(
        full.cached >= kw_cells_total,
        "full matrix must reuse every pilot KW cell ({} cached < {kw_cells_total})",
        full.cached,
    );
    println!(
        "cell cache: {} solved, {} served from cache this sweep (≥ all {} KW pilot cells)",
        full.solved, full.cached, kw_cells_total,
    );
    println!("run store: {store_path} (re-run this binary for a 100% cache-hit replay)");
    println!("Shape checks: KW rounds are constant per k while JRS/MIS rounds grow with n;");
    println!("KW ratio sits between greedy and trivial and shrinks as k grows (Theorem 6).");
}
