//! Experiment T5 (Theorem 6, headline): the full pipeline against every
//! baseline — set size, rounds, and messages.
//!
//! Reproduction target (shape, not absolute numbers): KW is the only
//! algorithm whose round count is **independent of n**; its set size lands
//! between greedy/JRS (better quality, more rounds as n grows) and the
//! trivial baseline, within the Theorem-6 factor of the lower bound.
//!
//! Every algorithm is driven through the unified `DsSolver` trait: the
//! whole comparison is one `ExperimentRunner` matrix over registry specs.

use std::collections::HashMap;

use kw_bench::denominators::{best_denominator, Denominator};
use kw_bench::table::Table;
use kw_bench::workloads::Workload;
use kw_core::solver::ExperimentRunner;
use kw_graph::CsrGraph;

fn main() {
    println!("T5 — Theorem 6: end-to-end comparison (10 seeds per randomized algorithm)\n");
    let suite = [
        Workload::Gnp { n: 128, p: 0.05 },
        Workload::Gnp { n: 512, p: 0.015 },
        Workload::Gnp { n: 2048, p: 0.004 },
        Workload::UnitDisk {
            n: 512,
            radius: 0.07,
        },
        Workload::BarabasiAlbert { n: 512, m: 3 },
        Workload::Grid { side: 23 },
    ];
    let workloads: Vec<(String, CsrGraph)> =
        suite.iter().map(|w| (w.label(), w.build(2))).collect();
    let denoms: HashMap<String, Denominator> = workloads
        .iter()
        .map(|(label, g)| (label.clone(), best_denominator(g, 64, 300)))
        .collect();

    let registry = kw_baselines::registry();
    let solvers = registry
        .build_all([
            "kw:k=2", "kw:k=3", "kw:k=4", "jrs", "luby-mis", "greedy", "trivial",
        ])
        .expect("all specs registered");
    let cells = ExperimentRunner::new()
        .workers(0) // one worker per core; results are scheduling-independent
        .run_matrix(&solvers, &workloads, 0..10)
        .expect("matrix runs");

    let mut table = Table::new([
        "workload",
        "n",
        "Δ",
        "denom",
        "algorithm",
        "E|DS|",
        "ratio",
        "rounds",
    ]);
    // Group rows by workload (cells arrive solver-major).
    for (label, _) in &workloads {
        for cell in cells.iter().filter(|c| &c.workload == label) {
            assert_eq!(cell.failures, 0, "reliable network never fails to dominate");
            let denom = &denoms[label];
            let rounds = if cell.rounds.max == 0.0 {
                "-".to_string() // centralized solvers: no synchronous rounds
            } else {
                format!("{:.0}", cell.rounds.mean)
            };
            table.row([
                label.clone(),
                cell.n.to_string(),
                cell.max_degree.to_string(),
                denom.kind.label().to_string(),
                cell.solver.clone(),
                format!("{:.1}", cell.size.mean),
                format!("{:.2}", cell.size.mean / denom.value),
                rounds,
            ]);
        }
    }
    println!("{table}");
    println!("Shape checks: KW rounds are constant per k while JRS/MIS rounds grow with n;");
    println!("KW ratio sits between greedy and trivial and shrinks as k grows (Theorem 6).");
}
