//! Experiment T5 (Theorem 6, headline): the full pipeline against every
//! baseline — set size, rounds, and messages.
//!
//! Reproduction target (shape, not absolute numbers): KW is the only
//! algorithm whose round count is **independent of n**; its set size lands
//! between greedy/JRS (better quality, more rounds as n grows) and the
//! trivial baseline, within the Theorem-6 factor of the lower bound.
//!
//! Every algorithm is driven through the unified `DsSolver` trait, in two
//! overlapping `ExperimentRunner` sweeps sharing one [`ExperimentCache`]:
//! a KW-only pilot (the k-trend), then the full matrix — whose KW cells
//! and workload graphs are served from the cache instead of re-solved or
//! re-generated.

use std::collections::HashMap;

use kw_bench::denominators::{best_denominator, Denominator};
use kw_bench::table::Table;
use kw_bench::workloads::Workload;
use kw_core::solver::{ExperimentCache, ExperimentRunner};
use kw_graph::CsrGraph;

fn main() {
    println!("T5 — Theorem 6: end-to-end comparison (10 seeds per randomized algorithm)\n");
    let suite = [
        Workload::Gnp { n: 128, p: 0.05 },
        Workload::Gnp { n: 512, p: 0.015 },
        Workload::Gnp { n: 2048, p: 0.004 },
        Workload::UnitDisk {
            n: 512,
            radius: 0.07,
        },
        Workload::BarabasiAlbert { n: 512, m: 3 },
        Workload::Grid { side: 23 },
    ];
    let cache = ExperimentCache::new();
    // Graphs come from the cache's (workload, seed) memo — built once,
    // shared by both sweeps (and by any later sweep using this cache).
    let workloads: Vec<(String, CsrGraph)> = suite
        .iter()
        .map(|w| {
            let g = cache.graph(&w.label(), 2, || w.build(2));
            (w.label(), (*g).clone())
        })
        .collect();
    let registry = kw_baselines::registry();
    let runner = ExperimentRunner::new()
        .workers(0) // one worker per core; results are scheduling-independent
        .cache(cache.clone());

    // Sweep 1 — KW k-trend pilot (Theorem 6: quality improves with k).
    let kw_solvers = registry
        .build_all(["kw:k=2", "kw:k=3", "kw:k=4"])
        .expect("kw specs registered");
    let kw_cells = runner
        .run_matrix(&kw_solvers, &workloads, 0..10)
        .expect("pilot runs");
    println!("k-trend (mean |DS| per workload; must shrink as k grows):");
    for (label, _) in &workloads {
        let sizes: Vec<String> = kw_cells
            .iter()
            .filter(|c| &c.workload == label)
            .map(|c| format!("{}={:.1}", c.solver, c.size.mean))
            .collect();
        println!("  {label}: {}", sizes.join("  "));
    }
    println!();

    // Sweep 2 — the full matrix. Overlaps sweep 1 on every KW cell; only
    // the baselines are actually solved.
    let solvers = registry
        .build_all([
            "kw:k=2", "kw:k=3", "kw:k=4", "jrs", "luby-mis", "greedy", "trivial",
        ])
        .expect("all specs registered");
    let denoms: HashMap<String, Denominator> = workloads
        .iter()
        .map(|(label, g)| (label.clone(), best_denominator(g, 64, 300)))
        .collect();
    let cells = runner
        .run_matrix(&solvers, &workloads, 0..10)
        .expect("matrix runs");

    let mut table = Table::new([
        "workload",
        "n",
        "Δ",
        "denom",
        "algorithm",
        "E|DS|",
        "ratio",
        "rounds",
    ]);
    // Group rows by workload (cells arrive solver-major).
    for (label, _) in &workloads {
        for cell in cells.iter().filter(|c| &c.workload == label) {
            assert_eq!(cell.failures, 0, "reliable network never fails to dominate");
            let denom = &denoms[label];
            let rounds = if cell.rounds.max == 0.0 {
                "-".to_string() // centralized solvers: no synchronous rounds
            } else {
                format!("{:.0}", cell.rounds.mean)
            };
            table.row([
                label.clone(),
                cell.n.to_string(),
                cell.max_degree.to_string(),
                denom.kind.label().to_string(),
                cell.solver.clone(),
                format!("{:.1}", cell.size.mean),
                format!("{:.2}", cell.size.mean / denom.value),
                rounds,
            ]);
        }
    }
    println!("{table}");
    let kw_cells_total = (kw_solvers.len() * workloads.len() * 10) as u64;
    assert_eq!(
        cache.hits(),
        kw_cells_total,
        "full matrix must reuse every pilot KW cell"
    );
    println!(
        "cell cache: {} solved, {} served from cache (all {} KW cells of the full matrix)",
        cache.misses(),
        cache.hits(),
        kw_cells_total,
    );
    println!("Shape checks: KW rounds are constant per k while JRS/MIS rounds grow with n;");
    println!("KW ratio sits between greedy and trivial and shrinks as k grows (Theorem 6).");
}
