//! Experiment T8 (Lemma 1): the bound chain
//! `Σ 1/(δ⁽¹⁾+1) ≤ LP_OPT ≤ |DS_OPT|` and the integrality gap.
//!
//! Validates the paper's lower-bound machinery on exactly solvable
//! instances: the Lemma-1 value must never exceed the LP optimum, which
//! must never exceed the integral optimum. The `gap` column (IP/LP) shows
//! how much is lost by the relaxation itself — context for why the
//! LP-relative ratios in T1/T2 are meaningful.

use kw_bench::table::Table;
use kw_bench::workloads::small_suite;
use kw_lp::exact::{solve_mds, ExactOptions};
use kw_lp::{bounds, domset};

fn main() {
    println!("T8 — Lemma 1: lemma1 ≤ LP_OPT ≤ |DS_OPT| and the integrality gap\n");
    let mut table = Table::new([
        "workload",
        "n",
        "Δ",
        "lemma1",
        "LP_OPT",
        "|DS_OPT|",
        "lemma1/LP",
        "gap IP/LP",
    ]);
    for w in small_suite() {
        let g = w.build(1);
        if g.len() > 128 {
            continue;
        }
        let lemma1 = bounds::lemma1_bound(&g);
        let lp = domset::solve_lp_mds(&g).expect("LP solvable").value;
        // Exact search can be expensive on high-girth instances; degrade
        // to LP-only rows rather than stalling the table.
        let ip = solve_mds(
            &g,
            &ExactOptions {
                max_nodes: 128,
                search_budget: 30_000_000,
            },
        )
        .ok()
        .map(|ds| ds.len() as f64);
        assert!(lemma1 <= lp + 1e-6, "Lemma 1 violated: {lemma1} > {lp}");
        if let Some(ip) = ip {
            assert!(lp <= ip + 1e-6, "weak duality violated: {lp} > {ip}");
        }
        table.row([
            w.label(),
            g.len().to_string(),
            g.max_degree().to_string(),
            format!("{lemma1:.2}"),
            format!("{lp:.2}"),
            ip.map_or("-".to_string(), |v| format!("{v:.0}")),
            format!("{:.2}", lemma1 / lp),
            ip.map_or("-".to_string(), |v| format!("{:.2}", v / lp)),
        ]);
    }
    println!("{table}");
    println!("PASS: the chain lemma1 ≤ LP_OPT ≤ |DS_OPT| holds on every instance (Lemma 1 +");
    println!("weak duality), and the integrality gap stays near 1 — LP-relative ratios are tight.");
}
