//! Experiment T4 (Theorem 3 + remark): randomized rounding quality.
//!
//! Rounds the *exact* LP optimum (α = 1) with both multipliers over many
//! seeds. Claims: `E|DS| ≤ (1 + ln(Δ+1))·|DS_OPT|` for the plain
//! multiplier and `≤ 2(ln(Δ+1) − ln ln(Δ+1))·|DS_OPT|` for the
//! alternative.

use kw_bench::denominators::best_denominator;
use kw_bench::stats;
use kw_bench::table::Table;
use kw_bench::workloads::small_suite;
use kw_core::math;
use kw_core::rounding::{run_rounding, Multiplier, RoundingConfig};
use kw_sim::EngineConfig;

fn main() {
    println!("T4 — Theorem 3: rounding the exact LP optimum (α = 1), 200 seeds\n");
    let trials = 200u64;
    let mut table = Table::new([
        "workload",
        "Δ",
        "denom",
        "mult",
        "E|DS|",
        "E|DS|/denom",
        "bound",
        "fallback%",
    ]);
    for w in small_suite() {
        let g = w.build(1);
        let lp = kw_lp::domset::solve_lp_mds(&g).expect("LP solvable at suite sizes");
        let denom = best_denominator(&g, 72, 400);
        for (mult, name) in [(Multiplier::Ln, "ln"), (Multiplier::LnMinusLnLn, "ln-lnln")] {
            let config = RoundingConfig {
                multiplier: mult,
                ..Default::default()
            };
            let mut sizes = Vec::new();
            let mut fallbacks = 0u64;
            for seed in 0..trials {
                let run = run_rounding(&g, &lp.x, config, EngineConfig::seeded(seed))
                    .expect("rounding runs");
                assert!(run.set.is_dominating(&g), "fallback guarantees domination");
                sizes.push(run.set.len() as f64);
                fallbacks += run.fallback_members.iter().filter(|&&b| b).count() as u64;
            }
            let mean = stats::mean(&sizes);
            let bound = match mult {
                Multiplier::Ln => math::rounding_bound(1.0, g.max_degree()),
                Multiplier::LnMinusLnLn => math::rounding_bound_alt(1.0, g.max_degree()),
            };
            table.row([
                w.label(),
                g.max_degree().to_string(),
                denom.kind.label().to_string(),
                name.to_string(),
                format!("{mean:.1}"),
                format!("{:.2}", mean / denom.value),
                format!("{bound:.2}"),
                format!(
                    "{:.1}",
                    100.0 * fallbacks as f64 / (trials as f64 * g.len() as f64)
                ),
            ]);
        }
    }
    println!("{table}");
    println!("PASS criteria: E|DS|/OPT ≤ bound for every row (w.h.p. given 200 seeds). Rows");
    println!("whose denom is LP_OPT overstate the true OPT-relative ratio by the integrality");
    println!("gap (see T8) — e.g. the grid row sits ≈7% above its LP-relative value.");
    println!("The ln−lnln multiplier trades a smaller sampling term for more fallback joins.");
}
