//! Experiment T7 (remark after Theorem 6): setting `k = Θ(log Δ)` yields
//! an `O(log²Δ)` approximation in `O(log²Δ)` rounds.
//!
//! Sweeps Δ via star-of-cliques size (Δ doubles per row) with
//! `k = ⌈ln(Δ+2)⌉` and reports ratio / log²Δ and rounds / log²Δ — both
//! must stay bounded by constants for the remark to hold.
//!
//! Runs the pipeline through the `DsSolver` trait (`kw:k=K` specs),
//! with each Δ row's seed sweep persisted through a [`SweepSession`]
//! (`target/exp_t7_runs.jsonl`, or `KW_RUN_STORE`) — the Δ ladder is
//! exactly the kind of long sweep the streaming pipeline makes
//! resumable: kill it at any rung and restart to continue from there.

use kw_bench::denominators::best_denominator;
use kw_bench::table::Table;
use kw_core::math;
use kw_core::solver::{ExperimentRunner, SolverRegistry};
use kw_graph::generators;
use kw_results::pipeline::SweepSession;

fn main() {
    println!("T7 — k = Θ(log Δ): O(log²Δ) ratio in O(log²Δ) rounds\n");
    let registry = SolverRegistry::with_core_solvers();
    let store_path =
        std::env::var("KW_RUN_STORE").unwrap_or_else(|_| "target/exp_t7_runs.jsonl".to_string());
    let mut session = SweepSession::open(&store_path).expect("open run store");
    if session.replayed() > 0 {
        println!(
            "resuming: {} records replayed from {store_path}\n",
            session.replayed()
        );
    }
    let runner = ExperimentRunner::new();
    let (mut solved, mut cached) = (0u64, 0u64);
    let mut table = Table::new([
        "Δ",
        "n",
        "k=⌈lnΔ⌉",
        "rounds",
        "rounds/log²Δ",
        "E|DS|",
        "ratio",
        "ratio/log²Δ",
    ]);
    for exp in 3..9u32 {
        let clique = 1usize << exp;
        let g = generators::star_of_cliques(6, clique);
        let delta = g.max_degree();
        let k = math::log_delta_k(delta);
        let denom = best_denominator(&g, 0, 0); // Lemma 1 at scale
        let solver = registry.build(&format!("kw:k={k}")).expect("kw registered");
        let workloads = vec![(format!("cliques(6x{clique})"), g.clone())];
        let out = session
            .run(
                &runner,
                std::slice::from_ref(&solver),
                &workloads,
                0..8,
                |_| {},
            )
            .expect("sweep runs");
        let cell = &out.cells[0];
        assert_eq!(cell.failures, 0);
        solved += out.solved;
        cached += out.cached;
        let log2d = ((delta + 1) as f64).ln().powi(2);
        let rounds = cell.rounds.max as usize;
        let ratio = cell.size.mean / denom.value;
        table.row([
            delta.to_string(),
            g.len().to_string(),
            k.to_string(),
            rounds.to_string(),
            format!("{:.2}", rounds as f64 / log2d),
            format!("{:.1}", cell.size.mean),
            format!("{ratio:.2}"),
            format!("{:.3}", ratio / log2d),
        ]);
    }
    println!("{table}");
    println!(
        "run store: {store_path} — {solved} cells solved, {cached} served from the store/cache"
    );
    println!("PASS criteria: both normalized columns remain O(1) as Δ doubles six times —");
    println!("that constancy is the O(log²Δ)/O(log²Δ) claim of the remark after Theorem 6.");
}
