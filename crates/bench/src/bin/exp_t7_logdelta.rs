//! Experiment T7 (remark after Theorem 6): setting `k = Θ(log Δ)` yields
//! an `O(log²Δ)` approximation in `O(log²Δ)` rounds.
//!
//! Sweeps Δ via star-of-cliques size (Δ doubles per row) with
//! `k = ⌈ln(Δ+2)⌉` and reports ratio / log²Δ and rounds / log²Δ — both
//! must stay bounded by constants for the remark to hold.
//!
//! Runs the pipeline through the `DsSolver` trait (`kw:k=K` specs) with
//! an `ExperimentRunner` sweep over seeds.

use kw_bench::denominators::best_denominator;
use kw_bench::table::Table;
use kw_core::math;
use kw_core::solver::{ExperimentRunner, SolverRegistry};
use kw_graph::generators;

fn main() {
    println!("T7 — k = Θ(log Δ): O(log²Δ) ratio in O(log²Δ) rounds\n");
    let registry = SolverRegistry::with_core_solvers();
    let mut table = Table::new([
        "Δ",
        "n",
        "k=⌈lnΔ⌉",
        "rounds",
        "rounds/log²Δ",
        "E|DS|",
        "ratio",
        "ratio/log²Δ",
    ]);
    for exp in 3..9u32 {
        let clique = 1usize << exp;
        let g = generators::star_of_cliques(6, clique);
        let delta = g.max_degree();
        let k = math::log_delta_k(delta);
        let denom = best_denominator(&g, 0, 0); // Lemma 1 at scale
        let solver = registry.build(&format!("kw:k={k}")).expect("kw registered");
        let workloads = vec![(format!("cliques(6x{clique})"), g.clone())];
        let cells = ExperimentRunner::new()
            .run_matrix(std::slice::from_ref(&solver), &workloads, 0..8)
            .expect("sweep runs");
        let cell = &cells[0];
        assert_eq!(cell.failures, 0);
        let log2d = ((delta + 1) as f64).ln().powi(2);
        let rounds = cell.rounds.max as usize;
        let ratio = cell.size.mean / denom.value;
        table.row([
            delta.to_string(),
            g.len().to_string(),
            k.to_string(),
            rounds.to_string(),
            format!("{:.2}", rounds as f64 / log2d),
            format!("{:.1}", cell.size.mean),
            format!("{ratio:.2}"),
            format!("{:.3}", ratio / log2d),
        ]);
    }
    println!("{table}");
    println!("PASS criteria: both normalized columns remain O(1) as Δ doubles six times —");
    println!("that constancy is the O(log²Δ)/O(log²Δ) claim of the remark after Theorem 6.");
}
