//! Experiment T6 (remark after Theorem 4): the weighted variant.
//!
//! Sweeps `c_max` and validates the stated ratio
//! `k(Δ+1)^{1/k}[c_max(Δ+1)]^{1/k}` against the exact weighted LP
//! optimum, and shows the benefit over the cost-blind algorithm.

use kw_bench::table::Table;
use kw_core::math;
use kw_core::solver::{SolveContext, SolverRegistry};
use kw_core::weighted::run_weighted_alg2;
use kw_graph::{generators, VertexWeights};
use kw_sim::EngineConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("T6 — weighted fractional dominating set: cost ratio vs stated bound\n");
    let mut rng = SmallRng::seed_from_u64(6);
    let g = generators::gnp(96, 0.07, &mut rng);
    let delta = g.max_degree();
    let k = 3u32;
    // Cost-blind contender: the plain Algorithm-2 solver via the trait
    // API; its fractional output is evaluated on each cost vector.
    let blind_solver = SolverRegistry::with_core_solvers()
        .build(&format!("alg2:k={k}"))
        .expect("registered");
    let blind_x = blind_solver
        .solve(&g, &SolveContext::seeded(0))
        .expect("alg2 runs")
        .fractional
        .expect("fractional stage");
    let mut table = Table::new([
        "c_max",
        "wLP_OPT",
        "Σc·x (weighted)",
        "ratio",
        "bound",
        "Σc·x (cost-blind)",
        "blind/weighted",
    ]);
    for c_max in [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let costs: Vec<f64> = (0..g.len())
            .map(|_| 1.0 + rng.gen::<f64>() * (c_max - 1.0))
            .collect();
        let w = VertexWeights::from_values(costs).expect("valid costs");
        let lp = kw_lp::domset::solve_weighted_lp_mds(&g, &w).expect("weighted LP solves");
        let run = run_weighted_alg2(&g, &w, k, EngineConfig::default()).expect("weighted runs");
        assert!(run.x.is_feasible(&g));
        let ratio = run.cost / lp.value;
        let bound = math::weighted_lp_bound(k, delta, w.c_max());
        assert!(ratio <= bound + 1e-6, "bound violated: {ratio} > {bound}");
        let blind = blind_x.weighted_objective(&w);
        table.row([
            format!("{c_max:.0}"),
            format!("{:.2}", lp.value),
            format!("{:.2}", run.cost),
            format!("{ratio:.2}"),
            format!("{bound:.1}"),
            format!("{blind:.2}"),
            format!("{:.2}", blind / run.cost),
        ]);
    }
    println!("{table}");
    println!("PASS: ratio ≤ bound for every c_max. The blind/weighted column trends above 1");
    println!("as the cost spread grows — the cost-aware activity rule increasingly pays off,");
    println!("though on easy instances the two can tie (both are feasible either way).");
}
