//! Experiment T1 (Theorem 4): Algorithm 2's LP approximation ratio and
//! round count.
//!
//! Claim: feasible `LP_MDS` solution with `Σx ≤ k(Δ+1)^{2/k}·LP_OPT` in
//! exactly `2k²` rounds. Columns: measured ratio vs the bound (the ratio
//! must be ≤ bound everywhere; the *shape* — improving with k, degrading
//! with Δ — is the reproduction target).
//!
//! Runs through the `DsSolver` trait: the `alg2:k=K` solver's report
//! carries the fractional stage's solution and metrics.

use kw_bench::table::Table;
use kw_bench::workloads::small_suite;
use kw_core::math;
use kw_core::solver::{SolveContext, SolverRegistry};

fn main() {
    println!("T1 — Theorem 4: Algorithm 2 (Δ known), LP approximation ratio & rounds\n");
    let registry = SolverRegistry::with_core_solvers();
    let mut table = Table::new([
        "workload",
        "n",
        "Δ",
        "LP_OPT",
        "k",
        "Σx",
        "ratio",
        "bound k(Δ+1)^2/k",
        "rounds",
        "2k²",
    ]);
    for w in small_suite() {
        let g = w.build(1);
        let lp = kw_lp::domset::solve_lp_mds(&g).expect("LP solvable at suite sizes");
        for k in [1u32, 2, 3, 4, 6, 8] {
            let solver = registry
                .build(&format!("alg2:k={k}"))
                .expect("alg2 registered");
            let report = solver
                .solve(&g, &SolveContext::seeded(0))
                .expect("alg2 runs");
            let x = report
                .fractional
                .as_ref()
                .expect("pipeline exposes the fractional stage");
            assert!(x.is_feasible(&g), "infeasible output");
            let val = x.objective();
            let ratio = val / lp.value;
            let bound = math::alg2_lp_bound(k, g.max_degree());
            assert!(ratio <= bound + 1e-6, "bound violated: {ratio} > {bound}");
            table.row([
                w.label(),
                g.len().to_string(),
                g.max_degree().to_string(),
                format!("{:.2}", lp.value),
                k.to_string(),
                format!("{val:.2}"),
                format!("{ratio:.3}"),
                format!("{bound:.1}"),
                report.stages[0].metrics.rounds.to_string(),
                math::alg2_rounds(k).to_string(),
            ]);
        }
    }
    println!("{table}");
    println!("PASS: every ratio ≤ its Theorem-4 bound; every round count = 2k².");
}
