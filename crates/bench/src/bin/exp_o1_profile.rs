//! Experiment O1 (ROADMAP item (i)): where does engine time go as the
//! worker count grows?
//!
//! Every engine benchmark to date has shown the same inversion: 4
//! threads are *slower* than 1 on n ≤ 10k workloads. This binary turns
//! the kw-trace span plane on that question directly. It runs the two
//! boundary traffic shapes from `benches/engine.rs` — broadcast-heavy
//! *flood* and unicast-heavy *ping* — on G(n, p) with average degree 16
//! at 1/2/4/8 workers, with a [`kw_trace::Tracer`] installed, and
//! reports the per-phase attribution: how much wall time each of
//! plan/send/deliver/compute costs, how much goes to the synthetic
//! *barrier* span (pool synchronization overhead: the epoch-publish
//! lead plus the done-wait tail around every parallel phase on the
//! persistent worker pool), and how unevenly the chunk work is spread
//! (imbalance = max worker busy / mean worker busy).
//!
//! Outputs:
//!
//! * a markdown attribution table on stdout and at `KW_PROFILE_MD`
//!   (default `target/exp_o1_profile.md`);
//! * one `trace` line per cell appended to the run store at
//!   `KW_RUN_STORE` (default `target/exp_o1_profile.jsonl`), so
//!   `regress` can gate phase-share drift against a stored baseline;
//! * a Chrome trace-event JSON of the flood run at the highest thread
//!   count at `KW_TRACE_OUT` (default `target/exp_o1_trace.json`) —
//!   load it in Perfetto / `chrome://tracing` to see the spans.
//!
//! `KW_BENCH_QUICK=1` (as CI's profile_smoke step sets) shrinks to
//! n = 1_000, 4 rounds, threads 1/2.
//!
//! The binary also asserts the determinism contract on its own output:
//! the span structure hash of every thread count must be identical per
//! protocol — ticks vary, structure must not.

use kw_bench::traffic::{Flood, Ping};
use kw_graph::generators;
use kw_results::store::{RunStore, TraceRecord};
use kw_sim::{Engine, EngineConfig};
use kw_trace::Tracer;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn quick() -> bool {
    std::env::var_os("KW_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// One traced engine run; returns the harvested tracer and the summed
/// outputs (a cheap payload fingerprint to confirm thread-invariance).
fn profile(g: &kw_graph::CsrGraph, threads: usize, rounds: u32, protocol: &str) -> (Tracer, u64) {
    let cfg = EngineConfig {
        threads,
        ..Default::default()
    };
    kw_trace::install(Tracer::new());
    kw_trace::with_active(|t| t.begin("solve"));
    let outputs: Vec<u64> = match protocol {
        "flood" => {
            Engine::new(g, cfg, |info| Flood::new(u64::from(info.id.raw()), rounds))
                .run()
                .expect("reliable run")
                .outputs
        }
        "ping" => {
            Engine::new(g, cfg, |info| Ping::new(u64::from(info.id.raw()), rounds))
                .run()
                .expect("reliable run")
                .outputs
        }
        other => unreachable!("unknown protocol {other}"),
    };
    let mut tracer = kw_trace::take().expect("tracer was installed");
    tracer.finish();
    let fingerprint = outputs.iter().fold(0u64, |a, &x| a.wrapping_add(x));
    (tracer, fingerprint)
}

fn main() {
    let (n, rounds, thread_counts): (usize, u32, &[usize]) = if quick() {
        (1_000, 4, &[1, 2])
    } else {
        (10_000, 10, &[1, 2, 4, 8])
    };
    println!("O1 — engine phase attribution: flood/ping on gnp(n={n}, deg≈16), {rounds} rounds\n");
    let mut rng = SmallRng::seed_from_u64(42);
    let g = generators::gnp(n, 16.0 / n as f64, &mut rng);
    let workload = format!("gnp:n={n},deg=16");

    let store_path =
        std::env::var("KW_RUN_STORE").unwrap_or_else(|_| "target/exp_o1_profile.jsonl".to_string());
    let store = RunStore::open(&store_path).expect("open run store");

    let mut md = String::new();
    md.push_str(&format!(
        "# O1 — engine phase attribution\n\nflood/ping on gnp(n={n}, deg≈16), {rounds} rounds, seed 42.\n\
         Shares are of total phase time; *barrier* is pool synchronization\n\
         overhead (epoch-publish lead + done-wait tail around each parallel\n\
         phase on the persistent worker pool); imbalance is max/mean worker\n\
         busy time.\n\n"
    ));
    md.push_str(
        "| protocol | threads | total ms | plan | send | deliver | compute | barrier | imbalance |\n\
         |---|---|---:|---:|---:|---:|---:|---:|---:|\n",
    );

    let mut chrome_export: Option<(String, usize)> = None;
    for protocol in ["flood", "ping"] {
        let mut hashes = Vec::new();
        let mut fingerprints = Vec::new();
        for &threads in thread_counts {
            let (tracer, fingerprint) = profile(&g, threads, rounds, protocol);
            let summary = tracer.summarize();
            hashes.push(summary.structure_hash);
            fingerprints.push(fingerprint);
            let share = |p: &str| format!("{:.0}%", 100.0 * summary.phase_share(p));
            md.push_str(&format!(
                "| {protocol} | {threads} | {:.2} | {} | {} | {} | {} | {} | {:.2} |\n",
                summary.total_us as f64 / 1e3,
                share("plan"),
                share("send"),
                share("deliver"),
                share("compute"),
                share("barrier"),
                summary.imbalance,
            ));
            store
                .append_trace(&TraceRecord {
                    solver: format!("engine:{protocol}"),
                    workload: workload.clone(),
                    seed: 42,
                    chaos: String::new(),
                    summary,
                })
                .expect("append trace line");
            // Export the busiest flood profile for Perfetto.
            if protocol == "flood" && threads == *thread_counts.last().unwrap() {
                chrome_export = Some((tracer.chrome_json(), threads));
            }
        }
        // Determinism contract: structure is thread-invariant.
        assert!(
            hashes.windows(2).all(|w| w[0] == w[1]),
            "{protocol}: structure hash varies across thread counts: {hashes:x?}"
        );
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "{protocol}: outputs vary across thread counts"
        );
    }

    println!("{md}");
    let md_path =
        std::env::var("KW_PROFILE_MD").unwrap_or_else(|_| "target/exp_o1_profile.md".to_string());
    std::fs::write(&md_path, &md).expect("write markdown report");
    println!("attribution table -> {md_path}");
    println!("trace lines       -> {store_path}");

    if let Some((json, threads)) = chrome_export {
        let out = std::env::var("KW_TRACE_OUT")
            .unwrap_or_else(|_| "target/exp_o1_trace.json".to_string());
        std::fs::write(&out, json).expect("write Chrome trace");
        println!("chrome trace      -> {out} (flood @ {threads} threads)");
    }
}
