//! Experiment T3 (Theorem 6, complexity): message counts and message
//! sizes.
//!
//! Claims: each node sends `O(k²Δ)` messages of size `O(log Δ)` bits.
//! Columns `msgs/node/(k²Δ)` and `maxbits/log₂Δ` should be bounded by a
//! small constant across the sweep — that constancy *is* the reproduction.
//!
//! Runs the `kw:k=K` solver through the `DsSolver` trait and reads the
//! fractional (Algorithm 3) stage's metrics from its report.

use kw_bench::table::Table;
use kw_bench::workloads::Workload;
use kw_core::solver::{SolveContext, SolverRegistry};

fn main() {
    println!("T3 — Theorem 6: per-node message count O(k²Δ), message size O(log Δ)\n");
    let registry = SolverRegistry::with_core_solvers();
    let sweeps = [
        Workload::Gnp { n: 256, p: 0.02 },
        Workload::Gnp { n: 256, p: 0.08 },
        Workload::Gnp { n: 256, p: 0.3 },
        Workload::BarabasiAlbert { n: 256, m: 4 },
        Workload::UnitDisk {
            n: 256,
            radius: 0.12,
        },
    ];
    let mut table = Table::new([
        "workload",
        "Δ",
        "k",
        "rounds",
        "max msgs/node",
        "msgs/node/(k²Δ)",
        "max bits",
        "bits/log₂(Δ+1)",
    ]);
    for w in sweeps {
        let g = w.build(3);
        let delta = g.max_degree();
        for k in [1u32, 2, 4, 8] {
            let solver = registry.build(&format!("kw:k={k}")).expect("kw registered");
            let report = solver
                .solve(&g, &SolveContext::seeded(0))
                .expect("alg3 runs");
            let frac = &report.stages[0].metrics;
            let max_node = frac.max_node_messages as f64;
            let norm = max_node / ((k * k) as f64 * delta as f64);
            let log_delta = ((delta + 1) as f64).log2();
            table.row([
                w.label(),
                delta.to_string(),
                k.to_string(),
                frac.rounds.to_string(),
                format!("{max_node:.0}"),
                format!("{norm:.2}"),
                frac.max_message_bits.to_string(),
                format!("{:.2}", frac.max_message_bits as f64 / log_delta),
            ]);
        }
    }
    println!("{table}");
    println!("PASS criteria: both normalized columns stay O(1) across Δ and k —");
    println!("msgs/node/(k²Δ) ≤ ~5 (4 broadcasts per inner iteration + boundaries),");
    println!("bits/log₂Δ ≤ ~3 (Elias-gamma ≈ 2·log₂ + tag bits).");
}
