//! Experiment I1 (ROADMAP item (g)): real-world DIMACS instances as
//! first-class workloads.
//!
//! Parses every bundled instance under `instances/` in lenient mode
//! (reporting what the parser cleaned up), validates each against its
//! registry checksum and shape, then runs the small solver suite over
//! all of them through a persistent [`SweepSession`]
//! (`target/exp_i1_runs.jsonl`, or `KW_RUN_STORE`). A second session
//! over the same store must resume to 100% cache hits with bit-identical
//! summaries — the acceptance check that instance cells cache, persist,
//! and resume exactly like generated cells. CI runs this binary and then
//! `regress --validate`s the store it wrote.
//!
//! Pass workload specs as CLI arguments to sweep other instances (or mix
//! instance and generated workloads):
//!
//! ```text
//! exp_i1_instances dimacs:instances/queen5_5.col gnp:n=128,p=0.05
//! ```

use kw_bench::table::Table;
use kw_bench::workloads::{parse_suite, Workload};
use kw_core::solver::ExperimentRunner;
use kw_graph::CsrGraph;
use kw_results::pipeline::SweepSession;
use kw_results::summary::Summary;

fn main() {
    println!("I1 — real DIMACS instances through the sweep pipeline\n");

    // 1. Parse + validate every bundled instance, reporting the lenient
    //    parser's cleanup counters.
    let mut table = Table::new([
        "instance", "n", "m", "Δ", "e-lines", "dups", "loops", "skipped",
    ]);
    for meta in kw_bench::instances::BUNDLED {
        let (graph, stats) =
            kw_bench::instances::load(meta).unwrap_or_else(|reason| panic!("{reason}"));
        table.row([
            meta.name.to_string(),
            graph.len().to_string(),
            graph.num_edges().to_string(),
            graph.max_degree().to_string(),
            stats.edge_lines.to_string(),
            stats.duplicate_edges.to_string(),
            stats.self_loops.to_string(),
            stats.skipped_lines.to_string(),
        ]);
    }
    println!("{table}");

    // 2. Sweep the small solver suite over the instances through the
    //    persistent store. Workload specs on the CLI override the
    //    bundled suite.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let suite: Vec<Workload> = if args.is_empty() {
        kw_bench::instances::suite()
    } else {
        parse_suite(&args).unwrap_or_else(|e| panic!("{e}"))
    };
    let specs = ["kw:k=2", "kw:k=3", "greedy", "jrs", "trivial"];
    let seeds: Vec<u64> = (0..5).collect();
    let store_path =
        std::env::var("KW_RUN_STORE").unwrap_or_else(|_| "target/exp_i1_runs.jsonl".to_string());
    let registry = kw_baselines::registry();
    let solvers = registry.build_all(specs).expect("suite specs registered");
    let runner = ExperimentRunner::new().workers(0);

    // Instance workloads are seed-invariant, so one build per workload
    // is the honest materialization (no per-seed copies).
    let workloads: Vec<(String, CsrGraph)> =
        suite.iter().map(|w| (w.label(), w.build(0))).collect();

    let mut session = SweepSession::open(&store_path).expect("open run store");
    if session.replayed() > 0 {
        println!(
            "resuming: {} records replayed from {store_path}\n",
            session.replayed()
        );
    }
    let out = session
        .run(&runner, &solvers, &workloads, seeds.iter().copied(), |_| {})
        .expect("instance sweep runs");
    if let Some(e) = &out.store_error {
        eprintln!("warning: run store append failed ({e})");
    }
    for cell in &out.cells {
        assert_eq!(cell.failures, 0, "reliable network never fails to dominate");
    }
    println!("{}", Summary::from_records(&out.records).to_markdown());
    println!(
        "sweep: {} solved, {} cached, store {store_path}",
        out.solved, out.cached
    );

    // 3. Resume in a fresh session: every cell must be served from the
    //    store — instance cells replay exactly like generated cells.
    //    (The first session must drop before the second can take the
    //    store's writer lock.)
    drop(session);
    let total = (solvers.len() * workloads.len() * seeds.len()) as u64;
    let mut resumed = SweepSession::open(&store_path).expect("reopen run store");
    assert!(
        resumed.replayed() as u64 >= total,
        "store must hold all {total} cells"
    );
    let again = resumed
        .run(&runner, &solvers, &workloads, seeds, |_| {})
        .expect("resumed sweep runs");
    assert_eq!(
        (again.solved, again.cached),
        (0, total),
        "resume must be 100% cache hits"
    );
    for (a, b) in out.cells.iter().zip(&again.cells) {
        assert_eq!(a.size, b.size, "{}/{}", a.solver, a.workload);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
    }
    println!(
        "resume: {}/{total} cache hits, summaries identical — PASS",
        again.cached
    );
}
