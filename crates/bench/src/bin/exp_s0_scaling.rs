//! Experiment S0 (ROADMAP item (i)): does the persistent worker pool
//! make threads actually win?
//!
//! `exp_o1_profile` attributes *where* engine time goes; this binary
//! asks the bottom-line question: wall-clock speedup of k workers over
//! the 1-thread run on the two boundary traffic shapes from
//! [`kw_bench::traffic`] — broadcast-heavy *flood* at n = 100k and
//! unicast-heavy *ping* at n = 10k, G(n, p) with average degree 16, at
//! 1/2/4/8 workers.
//!
//! Outputs:
//!
//! * a markdown speedup table on stdout and at `KW_SCALING_MD`
//!   (default `target/exp_s0_scaling.md`);
//! * one `bench` line per cell (bench `engine_scaling`, id
//!   `<protocol>/n<n>/t<threads>`, best-of-3 ms) and one `trace` line
//!   per cell appended to the run store at `KW_RUN_STORE` (default
//!   `target/exp_s0_scaling.jsonl`) — the trace lines carry the
//!   per-thread-count `total_us` the `regress` scaling gate
//!   (`compare_scaling`, `--scaling-drop`) anchors against the 1-thread
//!   run.
//!
//! `KW_BENCH_QUICK=1` (as CI's scaling_smoke step sets) shrinks to
//! flood-only, n = 2_000, 4 rounds, threads 1/2, single repetition.
//!
//! Speedup numbers are *measurements, not assertions*: on a single-core
//! host every multi-thread cell timeshares one CPU and speedup ≤ 1 is
//! the honest reading. What the binary does assert is the determinism
//! contract — outputs and span structure hashes must be bit-identical
//! across every thread count.

use kw_bench::traffic::{Flood, Ping};
use kw_graph::generators;
use kw_results::store::{BenchRecord, RunStore, TraceRecord};
use kw_sim::{Engine, EngineConfig};
use kw_trace::{TraceSummary, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn quick() -> bool {
    std::env::var_os("KW_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// One traced engine run: the trace rollup, an output fingerprint, and
/// the wall time in milliseconds.
fn run_once(
    g: &kw_graph::CsrGraph,
    threads: usize,
    rounds: u32,
    protocol: &str,
) -> (TraceSummary, u64, f64) {
    let cfg = EngineConfig {
        threads,
        ..Default::default()
    };
    kw_trace::install(Tracer::new());
    kw_trace::with_active(|t| t.begin("solve"));
    let start = std::time::Instant::now();
    let outputs: Vec<u64> = match protocol {
        "flood" => {
            Engine::new(g, cfg, |info| Flood::new(u64::from(info.id.raw()), rounds))
                .run()
                .expect("reliable run")
                .outputs
        }
        "ping" => {
            Engine::new(g, cfg, |info| Ping::new(u64::from(info.id.raw()), rounds))
                .run()
                .expect("reliable run")
                .outputs
        }
        other => unreachable!("unknown protocol {other}"),
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut tracer = kw_trace::take().expect("tracer was installed");
    tracer.finish();
    let fingerprint = outputs.iter().fold(0u64, |a, &x| a.wrapping_add(x));
    (tracer.summarize(), fingerprint, wall_ms)
}

/// One measured cell: `(protocol, n, rounds)`.
type Cell = (&'static str, usize, u32);

fn main() {
    let (cells, thread_counts, reps): (&[Cell], &[usize], usize) = if quick() {
        (&[("flood", 2_000, 4)], &[1, 2], 1)
    } else {
        (
            &[("flood", 100_000, 10), ("ping", 10_000, 10)],
            &[1, 2, 4, 8],
            3,
        )
    };
    println!("S0 — engine thread scaling on the persistent worker pool\n");

    let store_path =
        std::env::var("KW_RUN_STORE").unwrap_or_else(|_| "target/exp_s0_scaling.jsonl".to_string());
    let store = RunStore::open(&store_path).expect("open run store");

    let mut md = String::new();
    md.push_str(
        "# S0 — engine thread scaling\n\n\
         Best-of-N wall times and speedups vs the 1-thread run on the\n\
         persistent worker pool (degree-weighted chunks, per-chunk\n\
         delivery). Speedups are measurements, not assertions: on a\n\
         single-core host they sit at or below 1.0 by construction.\n\n\
         | protocol | n | threads | best ms | speedup vs 1t | barrier share |\n\
         |---|---:|---:|---:|---:|---:|\n",
    );

    for &(protocol, n, rounds) in cells {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = generators::gnp(n, 16.0 / n as f64, &mut rng);
        let workload = format!("gnp:n={n},deg=16");
        let mut hashes = Vec::new();
        let mut fingerprints = Vec::new();
        let mut base_ms = None;
        for &threads in thread_counts {
            let mut best: Option<(TraceSummary, u64, f64)> = None;
            for _ in 0..reps {
                let run = run_once(&g, threads, rounds, protocol);
                if best.as_ref().is_none_or(|b| run.2 < b.2) {
                    best = Some(run);
                }
            }
            let (summary, fingerprint, best_ms) = best.expect("reps >= 1");
            hashes.push(summary.structure_hash);
            fingerprints.push(fingerprint);
            if threads == 1 {
                base_ms = Some(best_ms);
            }
            let speedup = base_ms.map_or(f64::NAN, |b| b / best_ms);
            md.push_str(&format!(
                "| {protocol} | {n} | {threads} | {best_ms:.2} | {speedup:.2}x | {:.0}% |\n",
                100.0 * summary.phase_share("barrier"),
            ));
            store
                .append_bench(&BenchRecord {
                    bench: "engine_scaling".to_string(),
                    id: format!("{protocol}/n{n}/t{threads}"),
                    best_ms,
                })
                .expect("append bench line");
            store
                .append_trace(&TraceRecord {
                    solver: format!("engine:{protocol}"),
                    workload: workload.clone(),
                    seed: 42,
                    chaos: String::new(),
                    summary,
                })
                .expect("append trace line");
        }
        // Determinism contract: results and structure are thread-invariant.
        assert!(
            hashes.windows(2).all(|w| w[0] == w[1]),
            "{protocol}: structure hash varies across thread counts: {hashes:x?}"
        );
        assert!(
            fingerprints.windows(2).all(|w| w[0] == w[1]),
            "{protocol}: outputs vary across thread counts"
        );
    }

    println!("{md}");
    let md_path =
        std::env::var("KW_SCALING_MD").unwrap_or_else(|_| "target/exp_s0_scaling.md".to_string());
    std::fs::write(&md_path, &md).expect("write markdown report");
    println!("speedup table -> {md_path}");
    println!("bench + trace lines -> {store_path}");
}
