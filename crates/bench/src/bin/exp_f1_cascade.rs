//! Experiment F1 (Figure 1): the covering cascade.
//!
//! The paper's only figure shows, for k = 4, how nodes with
//! `a(v) ≥ (Δ+1)^{3/4}` active neighbors are covered first, then
//! `≥ (Δ+1)^{2/4}`, then `≥ (Δ+1)^{1/4}`, then the rest — a staircase
//! enforced by Lemma 3. This driver runs Algorithm 2 (and 3) with the
//! invariant observer attached and prints the measured staircase; `max
//! a(v)` must never exceed the `a-bound` column, and coverage must happen
//! in descending threshold order.

use kw_bench::workloads::Workload;
use kw_core::invariants::{run_alg2_checked, run_alg3_checked};
use kw_sim::EngineConfig;

fn main() {
    let k = 4;
    println!("F1 — Figure 1: the covering cascade at k = {k}\n");
    for (name, w) in [
        (
            "two-scale hub graph",
            Workload::StarOfCliques {
                cliques: 6,
                clique_size: 24,
            },
        ),
        ("random G(n,p)", Workload::Gnp { n: 256, p: 0.06 }),
    ] {
        let g = w.build(4);
        println!("== {name}: {} (Δ = {}) ==\n", w.label(), g.max_degree());
        let (run, report) = run_alg2_checked(&g, k, EngineConfig::default()).expect("alg2 runs");
        assert!(run.x.is_feasible(&g));
        println!("Algorithm 2 cascade:");
        println!("{}", report.cascade);
        assert!(
            report.is_clean(),
            "invariants violated: {:?}",
            report.violations
        );
        for step in &report.cascade.steps {
            assert!(
                step.max_a as f64 <= step.a_bound + 1e-6,
                "staircase violated at ℓ={}, m={}",
                step.l,
                step.m
            );
        }
        let (run3, report3) = run_alg3_checked(&g, k, EngineConfig::default()).expect("alg3 runs");
        assert!(run3.x.is_feasible(&g));
        println!("Algorithm 3 cascade:");
        println!("{}", report3.cascade);
        assert!(
            report3.is_clean(),
            "invariants violated: {:?}",
            report3.violations
        );
    }
    println!(
        "PASS: max a(v) ≤ (Δ+1)^((m+1)/k) at every step (Lemmas 3/6) — the Figure-1 staircase."
    );
}
