//! Ablation A3 (beyond the paper): robustness to message loss.
//!
//! The synchronous model assumes reliable links. Real ad-hoc radios drop
//! packets, so: how gracefully does the KW pipeline degrade when every
//! delivered message copy is lost independently with probability `p`?
//!
//! Interesting mechanics: lost Color messages make dynamic degrees look
//! *larger* (missing "I'm gray" news keeps neighbors active longer), and
//! lost X messages delay coverage detection — both push Σx and |DS| *up*
//! but never break domination, because the rounding fallback (lines 5–6)
//! only needs the final membership exchanges to decide locally.
//! Domination can only fail if a node misses *every* membership
//! announcement while some neighbor joined — measured below.
//!
//! The fault model rides in through `SolveContext::faults`, so the run
//! goes through the same `DsSolver` trait as every reliable experiment;
//! the certificate reports whether domination survived.

use kw_bench::stats;
use kw_bench::table::Table;
use kw_core::solver::{SolveContext, SolverRegistry};
use kw_graph::generators;
use kw_sim::FaultPlan;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    println!("A3 — pipeline under message loss (k = 3, 20 seeds per rate)\n");
    let mut rng = SmallRng::seed_from_u64(30);
    let g = generators::unit_disk(300, 0.1, &mut rng);
    let lower = kw_lp::bounds::lemma1_bound(&g);
    println!(
        "graph: n = {}, Δ = {}, Lemma-1 bound {lower:.1}\n",
        g.len(),
        g.max_degree()
    );
    let solver = SolverRegistry::with_core_solvers()
        .build("kw:k=3")
        .expect("kw registered");
    let seeds = 20u64;
    let mut table = Table::new([
        "drop p",
        "E|DS|",
        "E|DS|/lemma1",
        "frac Σx",
        "P(dominating)",
        "E[uncovered]",
    ]);
    for drop in [0.0f64, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let mut sizes = Vec::new();
        let mut fracs = Vec::new();
        let mut dominating = 0u64;
        let mut uncovered = Vec::new();
        for seed in 0..seeds {
            let ctx = SolveContext {
                seed,
                faults: FaultPlan::drop_with_probability(drop, seed ^ 0xfa).into(),
                ..SolveContext::default()
            };
            let report = solver.solve(&g, &ctx).expect("pipeline runs");
            sizes.push(report.size() as f64);
            fracs.push(
                report
                    .fractional
                    .as_ref()
                    .expect("fractional stage")
                    .objective(),
            );
            let miss = report.dominating_set.undominated(&g).len();
            uncovered.push(miss as f64);
            let cert = report.certificate.expect("certificates default on");
            assert_eq!(cert.dominates, miss == 0);
            dominating += u64::from(cert.dominates);
        }
        table.row([
            format!("{drop:.2}"),
            format!("{:.1}", stats::mean(&sizes)),
            format!("{:.2}", stats::mean(&sizes) / lower),
            format!("{:.1}", stats::mean(&fracs)),
            format!("{:.2}", dominating as f64 / seeds as f64),
            format!("{:.2}", stats::mean(&uncovered)),
        ]);
    }
    println!("{table}");
    println!("Findings: quality degrades smoothly with loss (stale colors inflate Σx and");
    println!("|DS|); domination survives moderate loss because the fallback is local, and");
    println!("fails only when a node misses every membership announcement in one round.");
}
