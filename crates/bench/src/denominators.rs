//! Ratio denominators for approximation tables.
//!
//! The paper proves every bound against `LP_OPT` (or its dual lower
//! bound), which is also the only denominator computable at scale. On
//! small graphs we can do better and report the true `|DS_OPT|`. This
//! module picks the strongest denominator the instance size allows and
//! labels it, so every table column says what it is relative to.

use kw_graph::CsrGraph;
use kw_lp::exact::{solve_mds, ExactOptions};

/// Which quantity a ratio is measured against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenominatorKind {
    /// Exact integral optimum `|DS_OPT|` (branch and bound).
    Exact,
    /// Fractional optimum `LP_OPT` (simplex).
    LpOpt,
    /// Lemma-1 dual bound `Σ 1/(δ⁽¹⁾+1)`.
    Lemma1,
}

impl DenominatorKind {
    /// Short label for table headers.
    pub fn label(self) -> &'static str {
        match self {
            DenominatorKind::Exact => "OPT",
            DenominatorKind::LpOpt => "LP_OPT",
            DenominatorKind::Lemma1 => "lemma1",
        }
    }
}

/// A lower bound on `|DS_OPT|` with its provenance.
#[derive(Clone, Copy, Debug)]
pub struct Denominator {
    /// The bound value.
    pub value: f64,
    /// How it was obtained.
    pub kind: DenominatorKind,
}

/// Computes the strongest denominator affordable for `g`:
/// exact optimum for `n ≤ exact_limit`, LP optimum for `n ≤ lp_limit`,
/// Lemma 1 otherwise.
pub fn best_denominator(g: &CsrGraph, exact_limit: usize, lp_limit: usize) -> Denominator {
    if g.len() <= exact_limit {
        if let Ok(opt) = solve_mds(
            g,
            &ExactOptions {
                max_nodes: exact_limit,
                ..Default::default()
            },
        ) {
            return Denominator {
                value: opt.len() as f64,
                kind: DenominatorKind::Exact,
            };
        }
    }
    if g.len() <= lp_limit {
        if let Ok(lp) = kw_lp::domset::solve_lp_mds(g) {
            return Denominator {
                value: lp.value,
                kind: DenominatorKind::LpOpt,
            };
        }
    }
    Denominator {
        value: kw_lp::bounds::lemma1_bound(g),
        kind: DenominatorKind::Lemma1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;

    #[test]
    fn picks_exact_on_small() {
        let d = best_denominator(&generators::petersen(), 64, 200);
        assert_eq!(d.kind, DenominatorKind::Exact);
        assert_eq!(d.value, 3.0);
    }

    #[test]
    fn picks_lp_on_medium() {
        let g = generators::grid(10, 10);
        let d = best_denominator(&g, 64, 200);
        assert_eq!(d.kind, DenominatorKind::LpOpt);
        assert!(d.value > 10.0);
    }

    #[test]
    fn picks_lemma1_on_large() {
        let g = generators::grid(20, 20);
        let d = best_denominator(&g, 64, 200);
        assert_eq!(d.kind, DenominatorKind::Lemma1);
        assert!(d.value > 0.0);
    }

    #[test]
    fn denominators_are_ordered() {
        // exact ≥ lp ≥ lemma1 on the same instance.
        let g = generators::grid(6, 6);
        let exact = best_denominator(&g, 64, 200).value;
        let lp = best_denominator(&g, 0, 200).value;
        let lemma1 = best_denominator(&g, 0, 0).value;
        assert!(exact >= lp - 1e-9);
        assert!(lp >= lemma1 - 1e-9);
        assert_eq!(DenominatorKind::Exact.label(), "OPT");
        assert_eq!(DenominatorKind::LpOpt.label(), "LP_OPT");
        assert_eq!(DenominatorKind::Lemma1.label(), "lemma1");
    }
}
