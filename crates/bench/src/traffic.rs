//! Synthetic engine traffic shapes shared by the profiling and scaling
//! experiments.
//!
//! `benches/engine.rs`, `exp_o1_profile`, and `exp_s0_scaling` all need
//! the same two boundary protocols — broadcast-heavy *flood* (the shape
//! of Algorithms 1–3) and unicast-heavy *ping* — so the engine is
//! exercised at both ends of its delivery plane. This module is the one
//! definition they share: a gamma-coded wire word plus the two
//! protocols, deterministic per `(node id, round)` so every run is
//! bit-identical across thread counts.

use kw_sim::rng::split_mix64;
use kw_sim::wire::{BitReader, BitWriter, WireEncode};
use kw_sim::{Ctx, Protocol, Status};

/// A single gamma-coded `u64` payload.
#[derive(Clone)]
pub struct Word(pub u64);

impl WireEncode for Word {
    fn encode(&self, w: &mut BitWriter) {
        w.write_gamma(self.0);
    }

    fn decode(r: &mut BitReader<'_>) -> Option<Self> {
        r.read_gamma().map(Word)
    }

    fn encoded_bits(&self) -> usize {
        kw_sim::wire::gamma_len(self.0)
    }
}

/// Broadcast-heavy: one broadcast per node per round (the shape of
/// Algorithms 1–3). Mirrors `benches/engine.rs`.
pub struct Flood {
    acc: u64,
    rounds_left: u32,
}

impl Flood {
    /// A flood node seeded with its own id, broadcasting for `rounds`
    /// rounds.
    pub fn new(id: u64, rounds: u32) -> Self {
        Flood {
            acc: id,
            rounds_left: rounds,
        }
    }
}

impl Protocol for Flood {
    type Msg = Word;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Word>) -> Status {
        for (_, m) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(m.0);
        }
        if self.rounds_left == 0 {
            return Status::Halted;
        }
        self.rounds_left -= 1;
        ctx.broadcast(Word(self.acc | 1));
        Status::Running
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

/// Unicast-heavy: four unicasts per node per round to hash-chosen
/// ports. Mirrors `benches/engine.rs`.
pub struct Ping {
    me: u64,
    acc: u64,
    rounds_left: u32,
}

impl Ping {
    /// A ping node seeded with its own id, sending for `rounds` rounds.
    pub fn new(id: u64, rounds: u32) -> Self {
        Ping {
            me: id,
            acc: id,
            rounds_left: rounds,
        }
    }
}

impl Protocol for Ping {
    type Msg = Word;
    type Output = u64;

    fn on_round(&mut self, ctx: &mut Ctx<'_, Word>) -> Status {
        for (_, m) in ctx.inbox() {
            self.acc = self.acc.wrapping_add(m.0);
        }
        if self.rounds_left == 0 {
            return Status::Halted;
        }
        self.rounds_left -= 1;
        let degree = ctx.degree();
        if degree > 0 {
            for i in 0..4u64 {
                let port = (split_mix64(self.me ^ (u64::from(self.rounds_left) << 8) ^ i)
                    % u64::from(degree)) as u32;
                ctx.send(port, Word(self.acc | 1));
            }
        }
        Status::Running
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_graph::generators;
    use kw_sim::{Engine, EngineConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn both_shapes_are_thread_invariant() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = generators::gnp(200, 0.08, &mut rng);
        let run = |threads: usize, ping: bool| -> Vec<u64> {
            let cfg = EngineConfig {
                threads,
                ..Default::default()
            };
            if ping {
                Engine::new(&g, cfg, |info| Ping::new(u64::from(info.id.raw()), 5))
                    .run()
                    .expect("reliable run")
                    .outputs
            } else {
                Engine::new(&g, cfg, |info| Flood::new(u64::from(info.id.raw()), 5))
                    .run()
                    .expect("reliable run")
                    .outputs
            }
        };
        for ping in [false, true] {
            let base = run(1, ping);
            assert_eq!(base, run(4, ping));
            assert!(base.iter().any(|&x| x != 0));
        }
    }
}
