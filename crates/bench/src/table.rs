//! Re-export of the shared table renderer.
//!
//! The fixed-width [`Table`] moved to [`kw_results::render`] when the
//! streaming results pipeline landed, so experiment drivers, summaries,
//! and the `regress` tool share one renderer; this module keeps the
//! classic `kw_bench::table::Table` path working for the remaining
//! drivers.

pub use kw_results::render::Table;
