//! Workload definitions shared by the experiment drivers.
//!
//! A [`Workload`] names a graph family and its parameters; experiments
//! iterate over a standard list so every table sweeps the same topologies
//! the paper's motivation calls for (ad-hoc/unit-disk networks) plus
//! families that stress the `Δ`-dependent bounds.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use kw_graph::{generators, CsrGraph};

/// A named, parameterized graph family.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Workload {
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Unit-disk graph with `n` nodes and the given radius.
    UnitDisk {
        /// Node count.
        n: usize,
        /// Connection radius in the unit square.
        radius: f64,
    },
    /// Barabási–Albert with `m` attachments per node.
    BarabasiAlbert {
        /// Node count.
        n: usize,
        /// Attachments per new node.
        m: usize,
    },
    /// A `side × side` grid.
    Grid {
        /// Side length.
        side: usize,
    },
    /// Complete `arity`-ary tree of the given depth.
    Tree {
        /// Branching factor.
        arity: usize,
        /// Depth.
        depth: usize,
    },
    /// Hub-and-cliques graph (Figure 1's two-scale degree structure).
    StarOfCliques {
        /// Number of cliques.
        cliques: usize,
        /// Clique size.
        clique_size: usize,
    },
}

impl Workload {
    /// Instantiates the graph (deterministic in `seed`).
    pub fn build(&self, seed: u64) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        match *self {
            Workload::Gnp { n, p } => generators::gnp(n, p, &mut rng),
            Workload::UnitDisk { n, radius } => generators::unit_disk(n, radius, &mut rng),
            Workload::BarabasiAlbert { n, m } => generators::barabasi_albert(n, m, &mut rng),
            Workload::Grid { side } => generators::grid(side, side),
            Workload::Tree { arity, depth } => generators::balanced_tree(arity, depth),
            Workload::StarOfCliques {
                cliques,
                clique_size,
            } => generators::star_of_cliques(cliques, clique_size),
        }
    }

    /// Short label for table rows.
    pub fn label(&self) -> String {
        match *self {
            Workload::Gnp { n, p } => format!("gnp(n={n},p={p})"),
            Workload::UnitDisk { n, radius } => format!("udg(n={n},r={radius})"),
            Workload::BarabasiAlbert { n, m } => format!("ba(n={n},m={m})"),
            Workload::Grid { side } => format!("grid({side}x{side})"),
            Workload::Tree { arity, depth } => format!("tree(b={arity},d={depth})"),
            Workload::StarOfCliques {
                cliques,
                clique_size,
            } => {
                format!("cliques({cliques}x{clique_size})")
            }
        }
    }
}

/// The standard small sweep (LP-solvable sizes, exact ratios).
pub fn small_suite() -> Vec<Workload> {
    vec![
        Workload::Gnp { n: 64, p: 0.1 },
        Workload::Gnp { n: 128, p: 0.05 },
        Workload::UnitDisk {
            n: 100,
            radius: 0.18,
        },
        Workload::BarabasiAlbert { n: 100, m: 2 },
        Workload::Grid { side: 10 },
        Workload::Tree { arity: 3, depth: 4 },
        Workload::StarOfCliques {
            cliques: 5,
            clique_size: 8,
        },
    ]
}

/// The large sweep (Lemma-1 denominators, scaling measurements).
pub fn large_suite() -> Vec<Workload> {
    vec![
        Workload::Gnp { n: 1024, p: 0.01 },
        Workload::Gnp { n: 4096, p: 0.003 },
        Workload::UnitDisk {
            n: 2048,
            radius: 0.05,
        },
        Workload::BarabasiAlbert { n: 2048, m: 3 },
        Workload::Grid { side: 48 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        for w in small_suite() {
            assert_eq!(w.build(7), w.build(7), "{}", w.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = small_suite().iter().map(Workload::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn sizes_match_parameters() {
        assert_eq!(Workload::Grid { side: 10 }.build(0).len(), 100);
        assert_eq!(Workload::Tree { arity: 3, depth: 4 }.build(0).len(), 121);
    }
}
