//! Workload definitions shared by the experiment drivers.
//!
//! A [`Workload`] names a graph family and its parameters; experiments
//! iterate over a standard list so every table sweeps the same topologies
//! the paper's motivation calls for (ad-hoc/unit-disk networks) plus
//! families that stress the `Δ`-dependent bounds. Since the instance
//! registry landed, a workload can also be an **externally loaded
//! graph** ([`Workload::Dimacs`]): a real DIMACS-challenge file parsed
//! leniently at build time, validated against the bundled
//! [`instances`](crate::instances) registry when it names a bundled
//! instance.
//!
//! # Spec grammar
//!
//! Workloads are CLI-drivable through a string grammar mirroring the
//! solver spec grammar (`kw_core::solver::SolverSpec`):
//!
//! ```text
//! spec := family ":" key "=" value ("," key "=" value)*
//!       | "dimacs:" path
//!
//! gnp:n=1024,p=0.01        Erdős–Rényi G(n, p)
//! udg:n=100,r=0.18         unit-disk, radius r in the unit square
//! ba:n=100,m=2             Barabási–Albert, m attachments per node
//! grid:side=10             side × side grid
//! tree:b=3,d=4             complete b-ary tree of depth d
//! cliques:c=5,size=8       hub-and-cliques (Figure 1 structure)
//! dimacs:instances/foo.col externally loaded DIMACS file
//! dimacs:name=x,path=p.col the same with an explicit display name
//! ```
//!
//! The bare-path `dimacs:` form names the workload after the file stem;
//! the explicit `name=`/`path=` form carries a custom display name. In
//! the explicit form `path=` consumes the rest of the spec verbatim, so
//! paths containing `=` or `,` round-trip; [`Workload::spec`] picks
//! whichever form reproduces the workload exactly. The one
//! representational limit: a custom *name* containing the substring
//! `,path=` cannot be written unambiguously (the parser splits at its
//! first occurrence, so the path side is the one that may contain it).
//!
//! [`Workload::parse`] reads this grammar and [`Workload::spec`] writes
//! it back; `parse(w.spec()) == w` for every workload.
//!
//! # Labels are cache and store keys
//!
//! [`Workload::label`] is not just a table row heading: the experiment
//! cache memoizes graphs and outcomes by label, and the run store
//! persists and replays records by label. Two different graphs must
//! therefore never share a label (the runner fails fast on duplicate
//! labels within one matrix), and label text must be **stable across
//! sites and releases** — a label that drifts (`p=0.1` vs `p=0.10`)
//! silently splits a cache cell. All float parameters are rendered
//! through one canonical formatter ([`canon_f64`]), and the label of
//! every suite workload is pinned by a test.

use std::path::{Path, PathBuf};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use kw_graph::{generators, io, CsrGraph};

use crate::instances;

/// A named, parameterized graph family (or an external instance).
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Unit-disk graph with `n` nodes and the given radius.
    UnitDisk {
        /// Node count.
        n: usize,
        /// Connection radius in the unit square.
        radius: f64,
    },
    /// Barabási–Albert with `m` attachments per node.
    BarabasiAlbert {
        /// Node count.
        n: usize,
        /// Attachments per new node.
        m: usize,
    },
    /// A `side × side` grid.
    Grid {
        /// Side length.
        side: usize,
    },
    /// Complete `arity`-ary tree of the given depth.
    Tree {
        /// Branching factor.
        arity: usize,
        /// Depth.
        depth: usize,
    },
    /// Hub-and-cliques graph (Figure 1's two-scale degree structure).
    StarOfCliques {
        /// Number of cliques.
        cliques: usize,
        /// Clique size.
        clique_size: usize,
    },
    /// An externally loaded DIMACS instance ([`io::parse_dimacs_lenient`]).
    ///
    /// Instance workloads are **seed-invariant**: `build` returns the
    /// identical graph for every seed (the file *is* the graph), unlike
    /// the generated families where the seed drives the topology. When
    /// `name` matches a bundled instance, loading validates the file's
    /// checksum and shape against the [`instances`] registry.
    Dimacs {
        /// Registry/display name (by convention the file stem).
        name: String,
        /// File path, absolute or relative to the workspace root.
        path: PathBuf,
    },
}

/// Errors from workload spec parsing or instance loading.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadError {
    /// A spec string failed to parse.
    Spec {
        /// The offending spec text.
        spec: String,
        /// Human-readable reason.
        reason: String,
    },
    /// An external instance failed to load or parse.
    Load {
        /// Label of the workload being built.
        workload: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A bundled instance file disagreed with its registry entry
    /// (checksum or `(n, m, Δ)` shape).
    Validate {
        /// Label of the workload being built.
        workload: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Spec { spec, reason } => {
                write!(f, "invalid workload spec {spec:?}: {reason}")
            }
            WorkloadError::Load { workload, reason } => {
                write!(f, "workload {workload} failed to load: {reason}")
            }
            WorkloadError::Validate { workload, reason } => {
                write!(f, "workload {workload} failed validation: {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// The canonical float-to-text formatter for workload labels and specs.
///
/// Labels key the experiment cache and the run store, so float rendering
/// must be identical at every site and stable across releases; this is
/// the only formatter labels may use. It emits Rust's shortest
/// round-trip representation (`0.1`, not `0.10`; `1`, not `1.0`), which
/// [`Workload::parse`] reads back exactly.
pub fn canon_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "workload parameters must be finite");
    let s = format!("{x}");
    debug_assert_eq!(s.parse::<f64>().ok(), Some(x), "canon_f64 must round-trip");
    s
}

impl Workload {
    /// An external DIMACS instance workload for `path`; the display name
    /// is the file stem.
    pub fn dimacs(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.to_string_lossy().into_owned());
        Workload::Dimacs { name, path }
    }

    /// Whether `build` depends on the seed. Instance workloads (and the
    /// deterministic generated families) return the identical graph for
    /// every seed; callers that materialize one graph per seed should
    /// check this instead of pretending seeds vary.
    pub fn is_seeded(&self) -> bool {
        matches!(
            self,
            Workload::Gnp { .. } | Workload::UnitDisk { .. } | Workload::BarabasiAlbert { .. }
        )
    }

    /// Instantiates the graph (deterministic in `seed`; seed-invariant
    /// for [`Workload::Dimacs`] and the deterministic families — see
    /// [`is_seeded`](Self::is_seeded)).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Load`]/[`WorkloadError::Validate`] for external
    /// instances that fail to read, parse, or match their registry
    /// entry. Generated families cannot fail.
    pub fn try_build(&self, seed: u64) -> Result<CsrGraph, WorkloadError> {
        let mut rng = SmallRng::seed_from_u64(seed);
        Ok(match self {
            Workload::Gnp { n, p } => generators::gnp(*n, *p, &mut rng),
            Workload::UnitDisk { n, radius } => generators::unit_disk(*n, *radius, &mut rng),
            Workload::BarabasiAlbert { n, m } => generators::barabasi_albert(*n, *m, &mut rng),
            Workload::Grid { side } => generators::grid(*side, *side),
            Workload::Tree { arity, depth } => generators::balanced_tree(*arity, *depth),
            Workload::StarOfCliques {
                cliques,
                clique_size,
            } => generators::star_of_cliques(*cliques, *clique_size),
            Workload::Dimacs { name, path } => self.load_instance(name, path)?,
        })
    }

    /// Instantiates the graph, panicking on external-instance failures
    /// (the experiment drivers' convention; use
    /// [`try_build`](Self::try_build) to handle them).
    pub fn build(&self, seed: u64) -> CsrGraph {
        self.try_build(seed)
            .unwrap_or_else(|e| panic!("cannot build workload {}: {e}", self.label()))
    }

    fn load_instance(&self, name: &str, path: &Path) -> Result<CsrGraph, WorkloadError> {
        let label = self.label();
        let load_err = |reason: String| WorkloadError::Load {
            workload: label.clone(),
            reason,
        };
        let resolved = instances::resolve(path);
        let bytes = std::fs::read(&resolved)
            .map_err(|e| load_err(format!("read {}: {e}", resolved.display())))?;
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| load_err(format!("{} is not UTF-8", resolved.display())))?;
        let (graph, _stats) =
            io::parse_dimacs_lenient(text).map_err(|e| load_err(e.to_string()))?;
        // Registry validation applies only when this workload actually
        // names the bundled file — a user's own `myciel3.col` elsewhere
        // on disk (including cwd-relative) is a different graph, not a
        // corrupted fixture. Canonicalization makes the comparison
        // immune to how either path was spelled; a registry file that
        // fails to canonicalize (missing fixture tree) never matches the
        // just-read `resolved`.
        if let Some(meta) = instances::find(name) {
            let same_file = match (resolved.canonicalize(), meta.registry_path().canonicalize()) {
                (Ok(a), Ok(b)) => a == b,
                _ => false,
            };
            if same_file {
                meta.validate(&bytes, &graph)
                    .map_err(|reason| WorkloadError::Validate {
                        workload: label.clone(),
                        reason,
                    })?;
            }
        }
        Ok(graph)
    }

    /// Short label for table rows — and the **cache/store key** of this
    /// workload (see the module docs). Floats render through
    /// [`canon_f64`]; the suite labels are pinned by a test.
    pub fn label(&self) -> String {
        match self {
            Workload::Gnp { n, p } => format!("gnp(n={n},p={})", canon_f64(*p)),
            Workload::UnitDisk { n, radius } => format!("udg(n={n},r={})", canon_f64(*radius)),
            Workload::BarabasiAlbert { n, m } => format!("ba(n={n},m={m})"),
            Workload::Grid { side } => format!("grid({side}x{side})"),
            Workload::Tree { arity, depth } => format!("tree(b={arity},d={depth})"),
            Workload::StarOfCliques {
                cliques,
                clique_size,
            } => {
                format!("cliques({cliques}x{clique_size})")
            }
            Workload::Dimacs { name, .. } => format!("dimacs({name})"),
        }
    }

    /// The canonical spec string of this workload; see the
    /// [module docs](self) for the grammar. `parse(w.spec()) == w`.
    pub fn spec(&self) -> String {
        match self {
            Workload::Gnp { n, p } => format!("gnp:n={n},p={}", canon_f64(*p)),
            Workload::UnitDisk { n, radius } => format!("udg:n={n},r={}", canon_f64(*radius)),
            Workload::BarabasiAlbert { n, m } => format!("ba:n={n},m={m}"),
            Workload::Grid { side } => format!("grid:side={side}"),
            Workload::Tree { arity, depth } => format!("tree:b={arity},d={depth}"),
            Workload::StarOfCliques {
                cliques,
                clique_size,
            } => format!("cliques:c={cliques},size={clique_size}"),
            Workload::Dimacs { name, path } => {
                // The bare-path form implies name == file stem; a custom
                // name needs the explicit form to round-trip. (A path
                // that itself starts with "name=" would be misread as
                // the explicit form, so it is emitted explicitly too.)
                let bare_safe = !path.to_string_lossy().starts_with("name=");
                if bare_safe && Workload::dimacs(path.clone()) == *self {
                    format!("dimacs:{}", path.display())
                } else {
                    format!("dimacs:name={name},path={}", path.display())
                }
            }
        }
    }

    /// Parses a workload spec string (see the [module docs](self) for
    /// the grammar).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::Spec`] on unknown families, missing or unknown
    /// keys, and unparseable values.
    pub fn parse(text: &str) -> Result<Self, WorkloadError> {
        let bad = |reason: &str| WorkloadError::Spec {
            spec: text.to_string(),
            reason: reason.to_string(),
        };
        let trimmed = text.trim();
        let (family, rest) = match trimmed.split_once(':') {
            Some((f, r)) => (f, r),
            None => (trimmed, ""),
        };
        if family == "dimacs" {
            if rest.is_empty() {
                return Err(bad("dimacs workloads need a path: dimacs:<path>"));
            }
            // Explicit form for custom display names. The path value
            // consumes the rest of the spec verbatim (paths may contain
            // '=' and ','), so the two keys are positional here rather
            // than going through ParamList.
            if let Some(explicit) = rest.strip_prefix("name=") {
                let Some((name, path)) = explicit.split_once(",path=") else {
                    return Err(bad(
                        "explicit dimacs form is dimacs:name=<name>,path=<path>",
                    ));
                };
                if name.is_empty() || path.is_empty() {
                    return Err(bad("dimacs name and path must be nonempty"));
                }
                return Ok(Workload::Dimacs {
                    name: name.to_string(),
                    path: PathBuf::from(path),
                });
            }
            // The common form: a bare path, named after its file stem.
            return Ok(Workload::dimacs(rest));
        }
        let mut params = ParamList::parse(trimmed, rest)?;
        let w = match family {
            "gnp" => Workload::Gnp {
                n: params.take("n")?,
                p: params.take("p")?,
            },
            "udg" => Workload::UnitDisk {
                n: params.take("n")?,
                radius: params.take("r")?,
            },
            "ba" => Workload::BarabasiAlbert {
                n: params.take("n")?,
                m: params.take("m")?,
            },
            "grid" => Workload::Grid {
                side: params.take("side")?,
            },
            "tree" => Workload::Tree {
                arity: params.take("b")?,
                depth: params.take("d")?,
            },
            "cliques" => Workload::StarOfCliques {
                cliques: params.take("c")?,
                clique_size: params.take("size")?,
            },
            _ => {
                return Err(bad(
                    "unknown family; expected gnp, udg, ba, grid, tree, cliques, or dimacs",
                ))
            }
        };
        params.finish()?;
        match &w {
            Workload::Gnp { p, .. } if !(0.0..=1.0).contains(p) => {
                return Err(bad("p must be in [0, 1]"))
            }
            Workload::UnitDisk { radius, .. } if !radius.is_finite() || *radius < 0.0 => {
                return Err(bad("r must be finite and non-negative"))
            }
            _ => {}
        }
        Ok(w)
    }
}

impl std::str::FromStr for Workload {
    type Err = WorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Workload::parse(s)
    }
}

impl std::fmt::Display for Workload {
    /// Displays the canonical spec string (not the label).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.spec())
    }
}

/// `key=value` pairs of one spec, consumed by [`ParamList::take`] so
/// leftovers (typos) are rejected by [`ParamList::finish`].
struct ParamList<'a> {
    spec: &'a str,
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> ParamList<'a> {
    fn parse(spec: &'a str, text: &'a str) -> Result<Self, WorkloadError> {
        let mut pairs = Vec::new();
        if !text.is_empty() {
            for pair in text.split(',') {
                let Some((k, v)) = pair.split_once('=') else {
                    return Err(WorkloadError::Spec {
                        spec: spec.to_string(),
                        reason: "parameters must be comma-separated key=value pairs".to_string(),
                    });
                };
                let (k, v) = (k.trim(), v.trim());
                if k.is_empty() || v.is_empty() {
                    return Err(WorkloadError::Spec {
                        spec: spec.to_string(),
                        reason: "parameter keys and values must be nonempty".to_string(),
                    });
                }
                if pairs.iter().any(|&(seen, _)| seen == k) {
                    return Err(WorkloadError::Spec {
                        spec: spec.to_string(),
                        reason: format!("duplicate parameter key {k:?}"),
                    });
                }
                pairs.push((k, v));
            }
        }
        Ok(ParamList { spec, pairs })
    }

    fn take<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, WorkloadError> {
        let idx = self
            .pairs
            .iter()
            .position(|&(k, _)| k == key)
            .ok_or_else(|| WorkloadError::Spec {
                spec: self.spec.to_string(),
                reason: format!("missing parameter {key:?}"),
            })?;
        let (_, raw) = self.pairs.swap_remove(idx);
        raw.parse().map_err(|_| WorkloadError::Spec {
            spec: self.spec.to_string(),
            reason: format!("parameter {key}={raw} is not a valid value"),
        })
    }

    fn finish(self) -> Result<(), WorkloadError> {
        if let Some(&(k, _)) = self.pairs.first() {
            return Err(WorkloadError::Spec {
                spec: self.spec.to_string(),
                reason: format!("unknown parameter {k:?}"),
            });
        }
        Ok(())
    }
}

/// Parses a whitespace-separated list of workload specs (e.g. CLI
/// arguments), rejecting duplicate labels — labels key the cache and
/// the store, so a sweep must never contain two workloads sharing one.
///
/// # Errors
///
/// [`WorkloadError::Spec`] on any unparseable spec or duplicate label.
pub fn parse_suite<S: AsRef<str>>(
    specs: impl IntoIterator<Item = S>,
) -> Result<Vec<Workload>, WorkloadError> {
    let mut suite = Vec::new();
    let mut labels = std::collections::HashSet::new();
    for spec in specs {
        let w = Workload::parse(spec.as_ref())?;
        if !labels.insert(w.label()) {
            return Err(WorkloadError::Spec {
                spec: spec.as_ref().to_string(),
                reason: format!("duplicate workload label {:?} in suite", w.label()),
            });
        }
        suite.push(w);
    }
    Ok(suite)
}

/// The standard small sweep (LP-solvable sizes, exact ratios).
pub fn small_suite() -> Vec<Workload> {
    vec![
        Workload::Gnp { n: 64, p: 0.1 },
        Workload::Gnp { n: 128, p: 0.05 },
        Workload::UnitDisk {
            n: 100,
            radius: 0.18,
        },
        Workload::BarabasiAlbert { n: 100, m: 2 },
        Workload::Grid { side: 10 },
        Workload::Tree { arity: 3, depth: 4 },
        Workload::StarOfCliques {
            cliques: 5,
            clique_size: 8,
        },
    ]
}

/// The large sweep (Lemma-1 denominators, scaling measurements).
pub fn large_suite() -> Vec<Workload> {
    vec![
        Workload::Gnp { n: 1024, p: 0.01 },
        Workload::Gnp { n: 4096, p: 0.003 },
        Workload::UnitDisk {
            n: 2048,
            radius: 0.05,
        },
        Workload::BarabasiAlbert { n: 2048, m: 3 },
        Workload::Grid { side: 48 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        for w in small_suite() {
            assert_eq!(w.build(7), w.build(7), "{}", w.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = small_suite().iter().map(Workload::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn sizes_match_parameters() {
        assert_eq!(Workload::Grid { side: 10 }.build(0).len(), 100);
        assert_eq!(Workload::Tree { arity: 3, depth: 4 }.build(0).len(), 121);
    }

    /// Labels are cache/store keys, so every suite label is pinned: a
    /// formatting drift here invalidates persisted run stores.
    #[test]
    fn suite_labels_are_pinned() {
        let small: Vec<String> = small_suite().iter().map(Workload::label).collect();
        assert_eq!(
            small,
            [
                "gnp(n=64,p=0.1)",
                "gnp(n=128,p=0.05)",
                "udg(n=100,r=0.18)",
                "ba(n=100,m=2)",
                "grid(10x10)",
                "tree(b=3,d=4)",
                "cliques(5x8)",
            ]
        );
        let large: Vec<String> = large_suite().iter().map(Workload::label).collect();
        assert_eq!(
            large,
            [
                "gnp(n=1024,p=0.01)",
                "gnp(n=4096,p=0.003)",
                "udg(n=2048,r=0.05)",
                "ba(n=2048,m=3)",
                "grid(48x48)",
            ]
        );
        assert_eq!(
            Workload::dimacs("instances/myciel3.col").label(),
            "dimacs(myciel3)"
        );
    }

    #[test]
    fn canon_f64_is_shortest_roundtrip() {
        assert_eq!(canon_f64(0.1), "0.1");
        assert_eq!(canon_f64(0.003), "0.003");
        assert_eq!(canon_f64(1.0), "1");
        assert_eq!(canon_f64(0.0017), "0.0017");
    }

    #[test]
    fn spec_roundtrips_through_parse() {
        let mut all = small_suite();
        all.extend(large_suite());
        all.push(Workload::dimacs("instances/myciel3.col"));
        for w in all {
            let spec = w.spec();
            assert_eq!(Workload::parse(&spec).unwrap(), w, "{spec}");
        }
    }

    #[test]
    fn parse_reads_the_documented_grammar() {
        assert_eq!(
            Workload::parse("gnp:n=1024,p=0.01").unwrap(),
            Workload::Gnp { n: 1024, p: 0.01 }
        );
        // Key order is free; whitespace is trimmed.
        assert_eq!(
            Workload::parse(" gnp:p=0.01,n=1024 ").unwrap(),
            Workload::Gnp { n: 1024, p: 0.01 }
        );
        assert_eq!(
            Workload::parse("dimacs:instances/foo.col").unwrap(),
            Workload::Dimacs {
                name: "foo".into(),
                path: "instances/foo.col".into(),
            }
        );
        assert_eq!(
            Workload::parse("tree:b=3,d=4").unwrap(),
            Workload::Tree { arity: 3, depth: 4 }
        );
        assert_eq!(
            Workload::parse("cliques:c=5,size=8").unwrap(),
            Workload::StarOfCliques {
                cliques: 5,
                clique_size: 8
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "gnp",                 // missing params
            "gnp:n=64",            // missing p
            "gnp:n=64,p=0.1,q=2",  // unknown key
            "gnp:n=64,n=64,p=0.1", // duplicate key
            "gnp:n=sixty,p=0.1",   // unparseable value
            "gnp:n=64,p=1.5",      // p out of range
            "udg:n=10,r=-1",       // negative radius
            "warp:n=3",            // unknown family
            "dimacs:",             // missing path
            "grid:side=",          // empty value
        ] {
            assert!(Workload::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_suite_rejects_duplicate_labels() {
        let ok = parse_suite(["gnp:n=64,p=0.1", "grid:side=4"]).unwrap();
        assert_eq!(ok.len(), 2);
        let err = parse_suite(["gnp:n=64,p=0.1", "gnp:p=0.1,n=64"]).unwrap_err();
        assert!(
            err.to_string().contains("duplicate workload label"),
            "{err}"
        );
    }

    #[test]
    fn seededness_is_reported_honestly() {
        assert!(Workload::Gnp { n: 4, p: 0.5 }.is_seeded());
        assert!(!Workload::Grid { side: 3 }.is_seeded());
        assert!(!Workload::dimacs("instances/myciel3.col").is_seeded());
        // Seed-invariant workloads really are: same graph for any seed.
        let w = Workload::dimacs("instances/myciel3.col");
        assert_eq!(w.build(0), w.build(17));
    }

    /// A user's own file whose stem collides with a bundled name is a
    /// different graph, not a corrupted fixture: registry validation
    /// must only fire for the registry's own file.
    #[test]
    fn stem_collision_with_bundled_name_skips_registry_validation() {
        let dir = std::env::temp_dir().join(format!("kw_wl_collision_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("myciel3.col");
        std::fs::write(&path, "p edge 3 2\ne 1 2\ne 2 3\n").unwrap();
        let w = Workload::dimacs(&path);
        assert_eq!(w.label(), "dimacs(myciel3)");
        let g = w.try_build(0).expect("user file must load unvalidated");
        assert_eq!((g.len(), g.num_edges()), (3, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The explicit name=/path= form round-trips custom display names
    /// that the bare-path form cannot carry.
    #[test]
    fn custom_dimacs_names_roundtrip_through_the_explicit_spec_form() {
        let w = Workload::Dimacs {
            name: "mygraph".into(),
            path: "data/v2.col".into(),
        };
        assert_eq!(w.spec(), "dimacs:name=mygraph,path=data/v2.col");
        assert_eq!(Workload::parse(&w.spec()).unwrap(), w);
        assert!(Workload::parse("dimacs:name=x").is_err()); // path required
        assert!(Workload::parse("dimacs:name=,path=p.col").is_err());
        // path= consumes the rest verbatim: '=' and ',' in paths
        // round-trip through the explicit form.
        let odd = Workload::Dimacs {
            name: "odd".into(),
            path: "data/a=1,b.col".into(),
        };
        assert_eq!(Workload::parse(&odd.spec()).unwrap(), odd);
        // A bare path containing '=' also round-trips (stem name).
        let bare = Workload::dimacs("data/a=1.col");
        assert_eq!(Workload::parse(&bare.spec()).unwrap(), bare);
    }

    #[test]
    fn missing_instance_file_is_a_load_error_not_a_panic() {
        let w = Workload::dimacs("instances/no_such_file.col");
        match w.try_build(0) {
            Err(WorkloadError::Load { workload, .. }) => {
                assert_eq!(workload, "dimacs(no_such_file)")
            }
            other => panic!("expected Load error, got {other:?}"),
        }
    }
}
