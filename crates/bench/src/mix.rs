//! Named request mixes for the serving layer.
//!
//! A *mix* is a list of `(solver spec, workload spec, seed, chaos)`
//! cells that a load generator replays against a `kw-serve` daemon. Mixes deliberately
//! contain few distinct cells: replaying more requests than cells is what
//! exercises the answer cache, which is the serving story's whole point
//! (a constant-round solve is computed once and then served from memory).
//!
//! Every entry uses the same spec grammars as the rest of the workspace
//! ([`Workload::parse`](crate::workloads::Workload::parse) and
//! `SolverSpec::parse`), so anything servable in a sweep is servable
//! under load, and vice versa.

/// One request of a serving mix: which solver on which workload with
/// which seed, under which chaos plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixEntry {
    /// Solver spec string (e.g. `"kw:k=2"`).
    pub solver: String,
    /// Workload spec string (e.g. `"grid:side=6"`).
    pub workload: String,
    /// Run seed.
    pub seed: u64,
    /// Chaos clause in the sweep grammar (`""` = reliable network); the
    /// daemon normalizes it through `ChaosPlan::parse`, so two clauses
    /// spelling the same plan share one cache cell.
    pub chaos: String,
    /// Engine worker threads for the solve (`1` = sequential). Part of
    /// the daemon's cache key — outcomes are bit-identical across thread
    /// counts, but wall times are not — so two entries differing only
    /// here are distinct cells.
    pub threads: usize,
}

impl MixEntry {
    fn new(solver: &str, workload: &str, seed: u64) -> Self {
        MixEntry {
            solver: solver.to_string(),
            workload: workload.to_string(),
            seed,
            chaos: String::new(),
            threads: 1,
        }
    }

    fn chaotic(solver: &str, workload: &str, seed: u64, chaos: &str) -> Self {
        MixEntry {
            chaos: chaos.to_string(),
            ..MixEntry::new(solver, workload, seed)
        }
    }

    fn threaded(solver: &str, workload: &str, seed: u64, threads: usize) -> Self {
        MixEntry {
            threads,
            ..MixEntry::new(solver, workload, seed)
        }
    }
}

/// The CI smoke mix: 8 distinct cells over two solvers, two small
/// generated workloads, and two seeds. Small enough that a burst
/// completes in seconds; any burst longer than 8 requests is guaranteed
/// to produce cache hits.
pub fn smoke_mix() -> Vec<MixEntry> {
    let mut mix = Vec::new();
    for solver in ["kw:k=2", "greedy"] {
        for workload in ["grid:side=6", "gnp:n=64,p=0.1"] {
            for seed in [0, 1] {
                mix.push(MixEntry::new(solver, workload, seed));
            }
        }
    }
    mix
}

/// A broader (still laptop-sized) mix: the small solver suite over
/// mixed-topology workloads and three seeds — 45 distinct cells. The
/// default for interactive `kw-load` runs.
pub fn small_mix() -> Vec<MixEntry> {
    let mut mix = Vec::new();
    for solver in ["kw:k=2", "kw:k=3", "greedy", "jrs", "trivial"] {
        for workload in ["grid:side=8", "gnp:n=128,p=0.05", "ba:n=128,m=3"] {
            for seed in 0..3 {
                mix.push(MixEntry::new(solver, workload, seed));
            }
        }
    }
    mix
}

/// The chaotic mix: one solver on one small grid, seed pinned, with the
/// chaos clause as the *only* axis — a clean control plus iid drops,
/// burst loss, a crash, a byzantine sender, and the full ISSUE-grammar
/// combination. Every entry is a distinct cache cell purely by chaos
/// spec, so replaying this mix exercises chaos-keyed caching end to end.
pub fn chaos_mix() -> Vec<MixEntry> {
    let cell = |chaos| MixEntry::chaotic("kw:k=2", "grid:side=5", 0, chaos);
    vec![
        cell(""),
        cell("drop=0.1,seed=5"),
        cell("burst=r1-3@0.9"),
        cell("crash=3@r2"),
        cell("byz=2"),
        cell("chaos:drop=0.1,burst=r3-5@0.9,crash=7@r2,byz=3"),
    ]
}

/// The scaling mix: one solver on one mid-size gnp workload, seed
/// pinned, with the engine thread count as the *only* axis — the
/// serving-layer mirror of `exp_s0_scaling`. Every entry is a distinct
/// cache cell purely by thread count, so replaying this mix exercises
/// threads-keyed caching end to end; on a multi-core host it also
/// surfaces the wall-time spread across worker counts.
pub fn scaling_mix() -> Vec<MixEntry> {
    [1, 2, 4, 8]
        .into_iter()
        .map(|threads| MixEntry::threaded("kw:k=2", "gnp:n=512,p=0.02", 0, threads))
        .collect()
}

/// Resolves a mix by name (`"smoke"`, `"small"`, `"chaos"`, or
/// `"scaling"`).
pub fn by_name(name: &str) -> Option<Vec<MixEntry>> {
    match name {
        "smoke" => Some(smoke_mix()),
        "small" => Some(small_mix()),
        "chaos" => Some(chaos_mix()),
        "scaling" => Some(scaling_mix()),
        _ => None,
    }
}

/// The names [`by_name`] accepts, for usage messages.
pub const MIX_NAMES: &[&str] = &["smoke", "small", "chaos", "scaling"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use kw_core::solver::SolverSpec;
    use kw_sim::ChaosPlan;

    #[test]
    fn every_mix_entry_parses_under_the_shared_grammars() {
        for name in MIX_NAMES {
            let mix = by_name(name).unwrap();
            assert!(!mix.is_empty());
            for entry in &mix {
                Workload::parse(&entry.workload)
                    .unwrap_or_else(|e| panic!("{name}: workload {:?}: {e}", entry.workload));
                SolverSpec::parse(&entry.solver)
                    .unwrap_or_else(|e| panic!("{name}: solver {:?}: {e}", entry.solver));
                ChaosPlan::parse(&entry.chaos)
                    .unwrap_or_else(|e| panic!("{name}: chaos {:?}: {e}", entry.chaos));
            }
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn chaos_mix_cells_are_distinct_by_canonical_chaos_spec() {
        let mix = chaos_mix();
        let mut specs: Vec<String> = mix
            .iter()
            .map(|e| ChaosPlan::parse(&e.chaos).unwrap().spec())
            .collect();
        specs.sort();
        specs.dedup();
        assert_eq!(specs.len(), mix.len(), "each entry must be its own cell");
        assert!(
            mix.iter().any(|e| !e.chaos.is_empty()),
            "the chaos mix must actually carry chaos"
        );
        // Every entry shares (solver, workload, seed): the chaos clause
        // really is the only axis distinguishing the cells.
        assert!(mix
            .iter()
            .all(|e| (e.solver.as_str(), e.workload.as_str(), e.seed)
                == (
                    mix[0].solver.as_str(),
                    mix[0].workload.as_str(),
                    mix[0].seed
                )));
        // The full-combination entry keeps byzantine corruption in play.
        let full = ChaosPlan::parse(&mix[5].chaos).unwrap();
        assert!(full.has_byzantine() && full.has_down() && !full.lossless());
    }

    #[test]
    fn scaling_mix_varies_only_the_thread_count() {
        let mix = scaling_mix();
        let mut threads: Vec<usize> = mix.iter().map(|e| e.threads).collect();
        assert!(threads.contains(&1), "a 1-thread anchor cell is required");
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), mix.len(), "each entry must be its own cell");
        assert!(mix.iter().all(|e| (
            e.solver.as_str(),
            e.workload.as_str(),
            e.seed,
            e.chaos.as_str()
        ) == (
            mix[0].solver.as_str(),
            mix[0].workload.as_str(),
            mix[0].seed,
            mix[0].chaos.as_str()
        )));
    }

    #[test]
    fn smoke_mix_is_small_and_distinct() {
        let mix = smoke_mix();
        assert_eq!(mix.len(), 8);
        let mut unique = mix.clone();
        unique.dedup();
        unique.sort_by(|a, b| {
            (&a.solver, &a.workload, a.seed).cmp(&(&b.solver, &b.workload, b.seed))
        });
        unique.dedup();
        assert_eq!(unique.len(), mix.len(), "cells must be distinct");
        // Every workload in the smoke mix is generated (never an
        // instance file), so the daemon can serve it from any cwd.
        for entry in &mix {
            assert!(!entry.workload.starts_with("dimacs:"));
        }
    }
}
