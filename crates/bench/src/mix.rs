//! Named request mixes for the serving layer.
//!
//! A *mix* is a list of `(solver spec, workload spec, seed)` cells that a
//! load generator replays against a `kw-serve` daemon. Mixes deliberately
//! contain few distinct cells: replaying more requests than cells is what
//! exercises the answer cache, which is the serving story's whole point
//! (a constant-round solve is computed once and then served from memory).
//!
//! Every entry uses the same spec grammars as the rest of the workspace
//! ([`Workload::parse`](crate::workloads::Workload::parse) and
//! `SolverSpec::parse`), so anything servable in a sweep is servable
//! under load, and vice versa.

/// One request of a serving mix: which solver on which workload with
/// which seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixEntry {
    /// Solver spec string (e.g. `"kw:k=2"`).
    pub solver: String,
    /// Workload spec string (e.g. `"grid:side=6"`).
    pub workload: String,
    /// Run seed.
    pub seed: u64,
}

impl MixEntry {
    fn new(solver: &str, workload: &str, seed: u64) -> Self {
        MixEntry {
            solver: solver.to_string(),
            workload: workload.to_string(),
            seed,
        }
    }
}

/// The CI smoke mix: 8 distinct cells over two solvers, two small
/// generated workloads, and two seeds. Small enough that a burst
/// completes in seconds; any burst longer than 8 requests is guaranteed
/// to produce cache hits.
pub fn smoke_mix() -> Vec<MixEntry> {
    let mut mix = Vec::new();
    for solver in ["kw:k=2", "greedy"] {
        for workload in ["grid:side=6", "gnp:n=64,p=0.1"] {
            for seed in [0, 1] {
                mix.push(MixEntry::new(solver, workload, seed));
            }
        }
    }
    mix
}

/// A broader (still laptop-sized) mix: the small solver suite over
/// mixed-topology workloads and three seeds — 45 distinct cells. The
/// default for interactive `kw-load` runs.
pub fn small_mix() -> Vec<MixEntry> {
    let mut mix = Vec::new();
    for solver in ["kw:k=2", "kw:k=3", "greedy", "jrs", "trivial"] {
        for workload in ["grid:side=8", "gnp:n=128,p=0.05", "ba:n=128,m=3"] {
            for seed in 0..3 {
                mix.push(MixEntry::new(solver, workload, seed));
            }
        }
    }
    mix
}

/// Resolves a mix by name (`"smoke"` or `"small"`).
pub fn by_name(name: &str) -> Option<Vec<MixEntry>> {
    match name {
        "smoke" => Some(smoke_mix()),
        "small" => Some(small_mix()),
        _ => None,
    }
}

/// The names [`by_name`] accepts, for usage messages.
pub const MIX_NAMES: &[&str] = &["smoke", "small"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use kw_core::solver::SolverSpec;

    #[test]
    fn every_mix_entry_parses_under_the_shared_grammars() {
        for name in MIX_NAMES {
            let mix = by_name(name).unwrap();
            assert!(!mix.is_empty());
            for entry in &mix {
                Workload::parse(&entry.workload)
                    .unwrap_or_else(|e| panic!("{name}: workload {:?}: {e}", entry.workload));
                SolverSpec::parse(&entry.solver)
                    .unwrap_or_else(|e| panic!("{name}: solver {:?}: {e}", entry.solver));
            }
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn smoke_mix_is_small_and_distinct() {
        let mix = smoke_mix();
        assert_eq!(mix.len(), 8);
        let mut unique = mix.clone();
        unique.dedup();
        unique.sort_by(|a, b| {
            (&a.solver, &a.workload, a.seed).cmp(&(&b.solver, &b.workload, b.seed))
        });
        unique.dedup();
        assert_eq!(unique.len(), mix.len(), "cells must be distinct");
        // Every workload in the smoke mix is generated (never an
        // instance file), so the daemon can serve it from any cwd.
        for entry in &mix {
            assert!(!entry.workload.starts_with("dimacs:"));
        }
    }
}
