//! Experiment harness reproducing every quantitative claim of the paper.
//!
//! See DESIGN.md §4 for the experiment index (T1–T8, F1, A1–A2). Each
//! experiment has a binary (`src/bin/exp_*.rs`) that prints a
//! paper-style table; criterion benches covering wall-clock scaling live
//! in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod denominators;
pub mod instances;
pub mod mix;
pub mod stats;
pub mod table;
pub mod traffic;
pub mod workloads;
