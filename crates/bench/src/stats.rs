//! Small statistics helpers for experiment tables.

/// Mean of a sample (0 for an empty sample).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample standard deviation (0 for fewer than 2 points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimum (0 for an empty sample).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min).pipe_finite()
}

/// Maximum (0 for an empty sample).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).pipe_finite()
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - 1.2909944487358056).abs() < 1e-12);
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 4.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }
}
