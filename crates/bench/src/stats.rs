//! Small statistics helpers for experiment tables.
//!
//! Thin wrappers over [`kw_core::solver::SummaryStats`] — the same
//! aggregation the `ExperimentRunner` reports — kept as free functions
//! because table-building code reads better with `stats::mean(&xs)` than
//! with a five-field struct.

use kw_core::solver::SummaryStats;

/// Mean of a sample (0 for an empty sample).
pub fn mean(xs: &[f64]) -> f64 {
    SummaryStats::from_samples(xs).mean
}

/// Unbiased sample standard deviation (0 for fewer than 2 points).
pub fn std_dev(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    // SummaryStats reports the population deviation; rescale to the
    // unbiased sample estimator the tables have always shown.
    SummaryStats::from_samples(xs).std_dev * (n as f64 / (n - 1) as f64).sqrt()
}

/// Minimum (0 for an empty sample).
pub fn min(xs: &[f64]) -> f64 {
    SummaryStats::from_samples(xs).min
}

/// Maximum (0 for an empty sample).
pub fn max(xs: &[f64]) -> f64 {
    SummaryStats::from_samples(xs).max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((std_dev(&xs) - 1.2909944487358056).abs() < 1e-12);
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 4.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }
}
