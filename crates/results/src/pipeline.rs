//! Wiring between the streaming runner and the run store.
//!
//! [`stream_sweep`] is the minimal harness: it pairs a bounded event
//! channel with a consumer thread so a single caller can both run a
//! matrix and observe its events without deadlocking on backpressure.
//!
//! [`SweepSession`] is the durable layer on top: it opens a
//! [`RunStore`], replays every persisted record into an
//! [`ExperimentCache`] (so a killed sweep resumes where it died), and
//! while a sweep runs it appends each freshly solved cell to the store
//! the moment its `CellFinished` event arrives — a crash loses at most
//! the cell in flight.

use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::sync_channel;

use kw_graph::CsrGraph;

use kw_core::solver::{
    CellSummary, DsSolver, ExperimentCache, ExperimentRunner, RunEvent, RunRecord, SolveError,
};

use crate::store::{git_describe, RunManifest, RunStore, StoreError};

/// Bound of the event channel [`stream_sweep`] allocates: big enough to
/// decouple worker bursts from consumer I/O, small enough that a stuck
/// consumer backpressures the sweep instead of buffering it whole.
pub const EVENT_CHANNEL_BOUND: usize = 256;

/// Errors of a persistent sweep: either the sweep itself failed or the
/// store did.
#[derive(Debug)]
pub enum PipelineError {
    /// The sweep aborted (solver error or panic).
    Solve(SolveError),
    /// The run store failed to read or append.
    Store(StoreError),
    /// The store holds records for a workload label whose graph shape
    /// differs from the sweep's live graph — the label was reused for a
    /// different graph (or a generator changed), and replaying would
    /// silently serve stale results. Delete the store (or use a fresh
    /// path) to re-measure.
    StaleWorkload {
        /// The offending workload label.
        workload: String,
        /// `(n, Δ)` recorded in the store.
        stored: (usize, usize),
        /// `(n, Δ)` of the live graph.
        live: (usize, usize),
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Solve(e) => write!(f, "sweep failed: {e}"),
            PipelineError::Store(e) => write!(f, "{e}"),
            PipelineError::StaleWorkload {
                workload,
                stored,
                live,
            } => write!(
                f,
                "run store is stale for workload {workload:?}: stored graph has \
                 (n, Δ) = {stored:?} but the live graph has {live:?}; delete the \
                 store or use a fresh path to re-measure"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Solve(e) => Some(e),
            PipelineError::Store(e) => Some(e),
            PipelineError::StaleWorkload { .. } => None,
        }
    }
}

impl From<SolveError> for PipelineError {
    fn from(e: SolveError) -> Self {
        PipelineError::Solve(e)
    }
}

impl From<StoreError> for PipelineError {
    fn from(e: StoreError) -> Self {
        PipelineError::Store(e)
    }
}

/// What a [`SweepSession::run`] call produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Aggregated cells, solver-major (the batch API's shape).
    pub cells: Vec<CellSummary>,
    /// Every run record of this sweep (fresh and cached), as streamed.
    pub records: Vec<RunRecord>,
    /// Cells solved fresh this sweep.
    pub solved: u64,
    /// Cells served from the cache (store replay or earlier sweeps).
    pub cached: u64,
    /// Cells that failed (0 iff the sweep succeeded; parallel workers
    /// mid-cell at abort time may each record one).
    pub failed: u64,
    /// First store-append failure, if any. The sweep's results above
    /// are complete regardless — a full disk must not discard computed
    /// cells — but records appended after the failure may be missing
    /// from the store, so callers should surface this to the user.
    pub store_error: Option<StoreError>,
}

/// Runs a streaming sweep, draining events on a consumer thread and
/// handing each to `on_event` (in channel order). Returns the same
/// summaries as [`ExperimentRunner::run_matrix`].
///
/// The channel is bounded at [`EVENT_CHANNEL_BOUND`]; a slow `on_event`
/// slows the sweep rather than ballooning memory.
pub fn stream_sweep<S: DsSolver>(
    runner: &ExperimentRunner,
    solvers: &[S],
    workloads: &[(String, CsrGraph)],
    seeds: impl IntoIterator<Item = u64>,
    on_event: impl FnMut(&RunEvent) + Send,
) -> Result<Vec<CellSummary>, SolveError> {
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let (tx, rx) = sync_channel::<RunEvent>(EVENT_CHANNEL_BOUND);
    std::thread::scope(|scope| {
        let consumer = scope.spawn(move || {
            let mut on_event = on_event;
            for ev in rx.iter() {
                on_event(&ev);
            }
        });
        // The runner drops its sender clones when the sweep ends, which
        // closes the channel and lets the consumer drain out.
        let result = runner.run_matrix_streaming(solvers, workloads, seeds, tx);
        consumer.join().expect("event consumer panicked");
        result
    })
}

/// A persistent, resumable sweep context bound to one store file.
///
/// # Example
///
/// ```no_run
/// use kw_core::solver::{ExperimentRunner, SolverRegistry};
/// use kw_graph::generators;
/// use kw_results::pipeline::SweepSession;
///
/// let registry = SolverRegistry::with_core_solvers();
/// let solvers = registry.build_all(["kw:k=2"]).unwrap();
/// let workloads = vec![("grid6".to_string(), generators::grid(6, 6))];
/// let mut session = SweepSession::open("target/runs.jsonl")?;
/// let out = session.run(
///     &ExperimentRunner::new(),
///     &solvers,
///     &workloads,
///     0..10,
///     |_event| {},
/// )?;
/// // Re-running after a crash (or in a later process) solves nothing:
/// // the store replays into the cache first.
/// assert_eq!(out.cells.len(), 1);
/// # Ok::<(), kw_results::pipeline::PipelineError>(())
/// ```
#[derive(Debug)]
pub struct SweepSession {
    store: RunStore,
    cache: std::sync::Arc<ExperimentCache>,
    replayed: usize,
    /// `(n, Δ)` of every workload label ever seen (store replay + this
    /// session's sweeps) — the staleness guard replaying depends on.
    shapes: HashMap<String, (usize, usize)>,
}

impl SweepSession {
    /// Opens (or creates) the store at `path` and replays its records
    /// into a fresh cache.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, StoreError> {
        let store = RunStore::open(path)?;
        let contents = store.load()?;
        let cache = ExperimentCache::new();
        let mut shapes = HashMap::new();
        for r in &contents.records {
            cache.insert_outcome(
                &r.solver,
                &r.workload,
                r.seed,
                &r.chaos,
                r.threads,
                r.outcome,
            );
            shapes.insert(r.workload.clone(), (r.n, r.max_degree));
        }
        Ok(SweepSession {
            store,
            cache,
            replayed: contents.records.len(),
            shapes,
        })
    }

    /// Number of records replayed from the store at open.
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// The cache sweeps of this session share.
    pub fn cache(&self) -> std::sync::Arc<ExperimentCache> {
        self.cache.clone()
    }

    /// The underlying store.
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// Runs one streaming sweep through this session: a manifest line is
    /// appended first, the session cache is attached to (a clone of)
    /// `runner`, every freshly solved cell is appended to the store as
    /// its event arrives, and all events are forwarded to `progress`.
    ///
    /// Cells already in the store (or solved by an earlier sweep of this
    /// session) are served from the cache and *not* re-appended. Before
    /// anything replays, every workload's live `(n, Δ)` is checked
    /// against the shape its records were stored with —
    /// [`PipelineError::StaleWorkload`] rejects a label reused for a
    /// different graph instead of silently serving stale results.
    ///
    /// A store append failure mid-sweep does **not** abort or discard
    /// the sweep; it is reported in [`SweepOutcome::store_error`] and
    /// later records still attempt to append (transient failures lose
    /// as little as possible).
    pub fn run<S: DsSolver>(
        &mut self,
        runner: &ExperimentRunner,
        solvers: &[S],
        workloads: &[(String, CsrGraph)],
        seeds: impl IntoIterator<Item = u64>,
        mut progress: impl FnMut(&RunEvent) + Send,
    ) -> Result<SweepOutcome, PipelineError> {
        for (label, graph) in workloads {
            let live = (graph.len(), graph.max_degree());
            match self.shapes.get(label) {
                Some(&stored) if stored != live => {
                    return Err(PipelineError::StaleWorkload {
                        workload: label.clone(),
                        stored,
                        live,
                    });
                }
                Some(_) => {}
                None => {
                    self.shapes.insert(label.clone(), live);
                }
            }
        }
        let seeds: Vec<u64> = seeds.into_iter().collect();
        let base = runner.base_context();
        self.store.append_manifest(&RunManifest {
            git: git_describe(),
            solvers: solvers.iter().map(DsSolver::spec).collect(),
            workloads: workloads.iter().map(|(label, _)| label.clone()).collect(),
            seeds: seeds.clone(),
            chaos: base.faults.spec(),
        })?;
        let runner = runner.clone().cache(self.cache.clone());
        let store = &self.store;
        let mut records = Vec::new();
        let mut totals = (0u64, 0u64, 0u64);
        let mut write_err: Option<StoreError> = None;
        let cells = stream_sweep(&runner, solvers, workloads, seeds, |ev| {
            match ev {
                RunEvent::CellFinished { record, .. } => {
                    if let Err(e) = store.append_record(record) {
                        write_err.get_or_insert(e);
                    }
                    records.push(record.clone());
                }
                RunEvent::CellCached { record, .. } => records.push(record.clone()),
                RunEvent::SweepFinished {
                    solved,
                    cached,
                    failed,
                } => totals = (*solved, *cached, *failed),
                _ => {}
            }
            progress(ev);
        })?;
        Ok(SweepOutcome {
            cells,
            records,
            solved: totals.0,
            cached: totals.1,
            failed: totals.2,
            store_error: write_err,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_core::solver::SolverRegistry;
    use kw_graph::generators;

    #[test]
    fn stream_sweep_matches_batch_and_observes_events() {
        let registry = SolverRegistry::with_core_solvers();
        let solvers = registry.build_all(["kw:k=2"]).unwrap();
        let workloads = vec![("grid4".to_string(), generators::grid(4, 4))];
        let runner = ExperimentRunner::new().workers(2);
        let mut terminal = 0usize;
        let cells = stream_sweep(&runner, &solvers, &workloads, 0..5, |ev| {
            if ev.is_terminal() {
                terminal += 1;
            }
        })
        .unwrap();
        assert_eq!(terminal, 5);
        let batch = runner.run_matrix(&solvers, &workloads, 0..5).unwrap();
        assert_eq!(cells[0].size, batch[0].size);
        assert_eq!(cells[0].messages, batch[0].messages);
    }
}
