//! The persistent, append-only JSONL run store.
//!
//! A store file holds one JSON object per line, each stamped with the
//! schema version (`"v"`) and a line kind:
//!
//! * `manifest` — one per sweep launch: git describe, solver specs,
//!   workload labels, seeds, and the chaos plan (canonical spec);
//! * `record` — one per solved `(solver, workload, seed)` cell (a
//!   serialized [`RunRecord`]);
//! * `bench` — one criterion measurement (group, id, best-of-N ms), so
//!   engine benchmarks share the same durable format as experiments;
//! * `trace` — one profiled solve's where-does-time-go rollup (a
//!   [`kw_trace::TraceSummary`]: per-phase totals, fork/join barrier
//!   time, worker imbalance, the structure fingerprint, and the full
//!   per-round counter series), keyed like a record by
//!   `(solver, workload, seed, chaos)` plus the thread count.
//!
//! # Crash safety and resume
//!
//! Appends are single `write` calls of one full line each, flushed
//! immediately, so a crash can tear at most the final line. Two layers
//! tolerate that tear: [`RunStore::open`] *repairs* the file by
//! truncating any trailing bytes after the last newline, and
//! [`RunStore::load`] (for read-only consumers) skips an unparseable
//! final line, reporting it via [`StoreContents::truncated_tail`].
//! Everything before the tail must parse — mid-file corruption is an
//! error, never silently skipped.
//!
//! Replaying a store's records into an [`ExperimentCache`] via
//! [`RunStore::replay_into`] is what makes sweeps resumable: a
//! re-launched sweep looks every cell up in the cache and only solves
//! the ones the store never recorded.
//!
//! # Schema versioning
//!
//! [`SCHEMA_VERSION`] is bumped whenever a line's meaning or required
//! fields change; readers reject lines with a *newer* version (old code
//! must not misread new stores) and accept unknown line kinds of the
//! current version (new code may add kinds old readers can skip).
//!
//! v1 → v2: manifests and records replaced the `fault_drop`/`fault_seed`
//! pair with a single `chaos` string — the canonical [`ChaosPlan`] spec
//! (`""` = reliable), which also covers bursts, crashes, byzantine
//! senders, and churn. v1 lines are still read: their legacy pair is
//! synthesized into the equivalent canonical iid-only spec, so old
//! stores replay into today's caches and key the same cells.
//!
//! v2 → v3: added the `trace` line kind. No existing kind changed
//! shape, so v1/v2 lines read exactly as before under a v3 reader; a v2
//! reader rejects v3 lines per the newer-version rule above.
//!
//! v3 → v4: record lines gained a `threads` field (absent in older
//! lines, read as `1` — every pre-v4 sweep ran its cells at the default
//! single-thread context), trace sample rows grew from six to eight
//! columns (worker-pool wakeup/idle deltas; six-column rows read as
//! zero-pool), and trace lines gained `pool_wakeups`/`pool_idle` totals
//! (absent reads as `0`).
//!
//! [`ChaosPlan`]: kw_sim::ChaosPlan
//!
//! # Single writer
//!
//! Append crash-safety assumes exactly one writer per file: two
//! processes appending concurrently (say, a `kw-serve` daemon and a
//! sweep pointed at the same path) could interleave partial `write`
//! calls into torn mid-file lines that no repair pass may touch. So
//! [`RunStore::open`] takes an exclusive advisory lock — a `<path>.lock`
//! sibling file holding the owner's pid, created atomically — and fails
//! fast with [`StoreError::Locked`] while another live process holds it.
//! A lock whose owner pid is no longer alive (crashed writer) is stolen;
//! dropping the store releases the lock. Read-only consumers (`regress`,
//! summaries of foreign stores) use [`load_path`], which neither locks
//! nor repairs.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use kw_core::solver::{ExperimentCache, RunOutcome, RunRecord};
use kw_sim::ChaosPlan;

use crate::json::Json;

/// Version stamped on every line this crate writes.
pub const SCHEMA_VERSION: u64 = 4;

/// One sweep launch's provenance: everything needed to re-run it.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// `git describe --always --dirty` at launch (or `"unknown"`).
    pub git: String,
    /// Canonical solver specs of the sweep, in matrix order.
    pub solvers: Vec<String>,
    /// Workload labels of the sweep, in matrix order.
    pub workloads: Vec<String>,
    /// Seeds of the sweep, in run order.
    pub seeds: Vec<u64>,
    /// Canonical chaos spec of the sweep's context (`""` = reliable).
    pub chaos: String,
}

/// One benchmark measurement in store form.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Benchmark group (e.g. `"engine_flood"`).
    pub bench: String,
    /// Benchmark id within the group (e.g. `"threads1/10000"`).
    pub id: String,
    /// Best-of-N per-iteration time, milliseconds.
    pub best_ms: f64,
}

/// One profiled solve's trace rollup in store form.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Canonical solver spec.
    pub solver: String,
    /// Workload label.
    pub workload: String,
    /// Seed of the profiled run.
    pub seed: u64,
    /// Canonical chaos spec (`""` = reliable).
    pub chaos: String,
    /// The trace rollup, including the full per-round counter series.
    pub summary: kw_trace::TraceSummary,
}

/// Everything a [`RunStore::load`] call found.
#[derive(Clone, Debug, Default)]
pub struct StoreContents {
    /// Sweep manifests, in append order.
    pub manifests: Vec<RunManifest>,
    /// Run records, in append order.
    pub records: Vec<RunRecord>,
    /// Benchmark records, in append order.
    pub benches: Vec<BenchRecord>,
    /// Trace records, in append order.
    pub traces: Vec<TraceRecord>,
    /// Lines of the current schema version whose kind this reader does
    /// not know (skipped, counted for diagnostics).
    pub unknown_kinds: usize,
    /// Whether the final line was torn (crash mid-append) and skipped.
    pub truncated_tail: bool,
}

/// Store failures.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A non-final line failed to parse or lacked required fields.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A line carries a schema version newer than this reader.
    UnsupportedSchema {
        /// 1-based line number.
        line: usize,
        /// The line's version.
        version: u64,
    },
    /// Another live process holds the store's writer lock.
    Locked {
        /// The store path that was contended.
        path: PathBuf,
        /// Contents of the lock file (the holder's pid, normally).
        holder: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "run store I/O failed: {e}"),
            StoreError::Corrupt { line, reason } => {
                write!(f, "run store corrupt at line {line}: {reason}")
            }
            StoreError::UnsupportedSchema { line, version } => write!(
                f,
                "run store line {line} has schema v{version}, newer than supported v{SCHEMA_VERSION}"
            ),
            StoreError::Locked { path, holder } => write!(
                f,
                "run store {} is already open for writing by process {holder}; \
                 two writers (e.g. a kw-serve daemon and a sweep) must not share \
                 one store — stop the other writer or point this one at a \
                 different path",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// An append-only JSONL run store at a fixed path.
///
/// # Example
///
/// ```no_run
/// use kw_results::store::{BenchRecord, RunStore};
///
/// let store = RunStore::open("target/runs.jsonl")?;
/// store.append_bench(&BenchRecord {
///     bench: "engine_flood".into(),
///     id: "threads1/1000".into(),
///     best_ms: 0.85,
/// })?;
/// let contents = store.load()?;
/// assert_eq!(contents.benches.len(), 1);
/// # Ok::<(), kw_results::store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct RunStore {
    path: PathBuf,
    file: File,
    // Held (and its file removed) for exactly the store's lifetime.
    _lock: WriterLock,
}

/// Exclusive advisory writer lock: a `<store>.lock` sibling file created
/// atomically and holding the owner's pid. Removed on drop.
#[derive(Debug)]
struct WriterLock {
    path: PathBuf,
}

impl WriterLock {
    fn acquire(store_path: &Path) -> Result<Self, StoreError> {
        let lock_path = lock_path_for(store_path);
        // Serialize same-process acquisition: threads of one process all
        // stamp the same pid, so the file protocol alone cannot tell them
        // apart. The registry mutex is held across the file operations,
        // making in-process contention (daemon + sweep in one binary)
        // fully race-free.
        let mut held = held_lock_paths().lock().expect("lock registry poisoned");
        if held.contains(&lock_path) {
            return Err(StoreError::Locked {
                path: store_path.to_path_buf(),
                holder: format!("{} (this process)", std::process::id()),
            });
        }
        // Two attempts: the second only after claiming a stale lock.
        for stole in [false, true] {
            match OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(mut f) => {
                    // Best-effort pid stamp; an empty lock file still
                    // locks (it reads as a non-numeric "pid" below, which
                    // is treated as a live holder).
                    let _ = write!(f, "{}", std::process::id());
                    held.insert(lock_path.clone());
                    return Ok(WriterLock { path: lock_path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&lock_path)
                        .unwrap_or_default()
                        .trim()
                        .to_string();
                    let stale = matches!(holder.parse::<u32>(), Ok(pid) if !pid_alive(pid));
                    if stale && !stole {
                        // The owner died without cleanup (kill -9, OOM).
                        // Claim the corpse by *renaming* it — rename is
                        // atomic, so of several racing stealers exactly
                        // one wins; the losers fall through to
                        // `create_new` against the winner's fresh lock.
                        // (Deleting instead would open a window where a
                        // loser removes the winner's live lock.)
                        let claim =
                            lock_path.with_extension(format!("steal.{}", std::process::id()));
                        if std::fs::rename(&lock_path, &claim).is_ok() {
                            let _ = std::fs::remove_file(&claim);
                        }
                        continue;
                    }
                    return Err(StoreError::Locked {
                        path: store_path.to_path_buf(),
                        holder: if holder.is_empty() {
                            "<unknown>".to_string()
                        } else {
                            holder
                        },
                    });
                }
                Err(e) => return Err(e.into()),
            }
        }
        unreachable!("second acquire attempt either succeeds or errors")
    }
}

impl Drop for WriterLock {
    fn drop(&mut self) {
        // Registry mutex spans both steps so no thread can acquire
        // between the file vanishing and the registry forgetting it.
        let mut held = held_lock_paths().lock().expect("lock registry poisoned");
        let _ = std::fs::remove_file(&self.path);
        held.remove(&self.path);
    }
}

/// Lock paths held by this process (see [`WriterLock::acquire`]).
fn held_lock_paths() -> &'static std::sync::Mutex<std::collections::HashSet<PathBuf>> {
    static HELD: std::sync::OnceLock<std::sync::Mutex<std::collections::HashSet<PathBuf>>> =
        std::sync::OnceLock::new();
    HELD.get_or_init(Default::default)
}

/// The lock file guarding `path`: a `.lock`-suffixed sibling.
fn lock_path_for(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".lock");
    PathBuf::from(os)
}

/// Whether `pid` names a live process. Only Linux has a cheap portable
/// answer (`/proc`); elsewhere assume alive — never steal a lock that
/// might be held.
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

impl RunStore {
    /// Opens (creating if missing) the store at `path`, repairing a torn
    /// final line left by a crash: any bytes after the last newline are
    /// truncated away, so the next append starts on a clean line.
    ///
    /// Takes the exclusive writer lock (see the module docs): while
    /// another live process has the same path open, this fails fast with
    /// [`StoreError::Locked`] rather than risking interleaved appends.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let lock = WriterLock::acquire(&path)?;
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        // Tail repair: drop a torn final line (no trailing newline),
        // scanning backwards from the end so opening a long-lived store
        // never reads the whole file.
        let len = file.seek(SeekFrom::End(0))?;
        if len > 0 {
            let mut pos = len;
            let mut keep = 0u64;
            let mut buf = [0u8; 8192];
            'scan: while pos > 0 {
                let chunk = buf.len().min(pos as usize);
                pos -= chunk as u64;
                file.seek(SeekFrom::Start(pos))?;
                file.read_exact(&mut buf[..chunk])?;
                for i in (0..chunk).rev() {
                    if buf[i] == b'\n' {
                        keep = pos + i as u64 + 1;
                        break 'scan;
                    }
                }
            }
            if keep < len {
                file.set_len(keep)?;
            }
        }
        file.seek(SeekFrom::End(0))?;
        Ok(RunStore {
            path,
            file,
            _lock: lock,
        })
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a sweep manifest line.
    pub fn append_manifest(&self, m: &RunManifest) -> Result<(), StoreError> {
        self.append_line(&Json::obj([
            ("v", Json::UInt(SCHEMA_VERSION)),
            ("kind", Json::Str("manifest".into())),
            ("git", Json::Str(m.git.clone())),
            (
                "solvers",
                Json::Arr(m.solvers.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            (
                "workloads",
                Json::Arr(m.workloads.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            (
                "seeds",
                Json::Arr(m.seeds.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            ("chaos", Json::Str(m.chaos.clone())),
        ]))
    }

    /// Appends one run record line.
    pub fn append_record(&self, r: &RunRecord) -> Result<(), StoreError> {
        self.append_line(&Json::obj([
            ("v", Json::UInt(SCHEMA_VERSION)),
            ("kind", Json::Str("record".into())),
            ("solver", Json::Str(r.solver.clone())),
            ("workload", Json::Str(r.workload.clone())),
            ("n", Json::UInt(r.n as u64)),
            ("max_degree", Json::UInt(r.max_degree as u64)),
            ("seed", Json::UInt(r.seed)),
            ("chaos", Json::Str(r.chaos.clone())),
            ("threads", Json::UInt(r.threads as u64)),
            ("dominates", Json::Bool(r.outcome.dominates)),
            ("size", Json::num(r.outcome.size)),
            ("rounds", Json::num(r.outcome.rounds)),
            ("messages", Json::num(r.outcome.messages)),
            ("bits", Json::num(r.outcome.bits)),
            ("ratio_vs_lemma1", Json::num(r.outcome.ratio_vs_lemma1)),
            ("wall_ms", Json::num(r.outcome.wall_ms)),
        ]))
    }

    /// Appends one benchmark measurement line.
    pub fn append_bench(&self, b: &BenchRecord) -> Result<(), StoreError> {
        self.append_line(&Json::obj([
            ("v", Json::UInt(SCHEMA_VERSION)),
            ("kind", Json::Str("bench".into())),
            ("bench", Json::Str(b.bench.clone())),
            ("id", Json::Str(b.id.clone())),
            ("best_ms", Json::num(b.best_ms)),
        ]))
    }

    /// Appends one trace rollup line. Phase totals serialize as a
    /// label→µs object and the per-round counter series as fixed-shape
    /// eight-field rows (six structural counters plus the two pool
    /// deltas), so trace lines stay one line even for thousand-round
    /// solves.
    pub fn append_trace(&self, t: &TraceRecord) -> Result<(), StoreError> {
        let s = &t.summary;
        let phase_us = Json::Obj(
            s.phase_us
                .iter()
                .map(|(label, us)| (label.clone(), Json::UInt(*us)))
                .collect(),
        );
        let samples = Json::Arr(
            s.samples
                .iter()
                .map(|r| {
                    Json::Arr(vec![
                        Json::UInt(u64::from(r.round)),
                        Json::UInt(r.messages),
                        Json::UInt(r.bits),
                        Json::UInt(r.active),
                        Json::UInt(r.arena_bytes),
                        Json::UInt(r.rebuilds),
                        Json::UInt(r.pool_wakeups),
                        Json::UInt(r.pool_idle),
                    ])
                })
                .collect(),
        );
        self.append_line(&Json::obj([
            ("v", Json::UInt(SCHEMA_VERSION)),
            ("kind", Json::Str("trace".into())),
            ("solver", Json::Str(t.solver.clone())),
            ("workload", Json::Str(t.workload.clone())),
            ("seed", Json::UInt(t.seed)),
            ("chaos", Json::Str(t.chaos.clone())),
            ("threads", Json::UInt(s.threads as u64)),
            ("rounds", Json::UInt(s.rounds)),
            ("total_us", Json::UInt(s.total_us)),
            ("barrier_us", Json::UInt(s.barrier_us)),
            ("imbalance", Json::num(s.imbalance)),
            ("pool_wakeups", Json::UInt(s.pool_wakeups)),
            ("pool_idle", Json::UInt(s.pool_idle)),
            ("structure_hash", Json::UInt(s.structure_hash)),
            ("phase_us", phase_us),
            ("samples", samples),
        ]))
    }

    fn append_line(&self, value: &Json) -> Result<(), StoreError> {
        let mut line = value.render();
        line.push('\n');
        // One write call per line keeps torn lines possible only at a
        // crash boundary; `&File` is `Write`, so appends need no `&mut`.
        let mut f = &self.file;
        f.write_all(line.as_bytes())?;
        f.flush()?;
        Ok(())
    }

    /// Parses the whole store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for an unreadable non-final line,
    /// [`StoreError::UnsupportedSchema`] for lines written by a newer
    /// schema. A torn *final* line is tolerated (see the module docs).
    pub fn load(&self) -> Result<StoreContents, StoreError> {
        let text = std::fs::read_to_string(&self.path)?;
        parse_store(&text)
    }

    /// Replays every stored record into `cache` through the runner's
    /// resume hook. Returns the number of records replayed.
    pub fn replay_into(&self, cache: &ExperimentCache) -> Result<usize, StoreError> {
        let contents = self.load()?;
        for r in &contents.records {
            cache.insert_outcome(
                &r.solver,
                &r.workload,
                r.seed,
                &r.chaos,
                r.threads,
                r.outcome,
            );
        }
        Ok(contents.records.len())
    }
}

/// Loads the store at `path` read-only: no writer lock, no tail repair,
/// no mutation of any kind. The path for validators and summarizers
/// (`regress`, dashboards) that must be able to read a store *while* a
/// daemon or sweep holds its writer lock. A torn final line is tolerated
/// exactly as in [`RunStore::load`].
pub fn load_path(path: impl AsRef<Path>) -> Result<StoreContents, StoreError> {
    let text = std::fs::read_to_string(path)?;
    parse_store(&text)
}

/// Parses store text (exposed for validators that read foreign files).
pub fn parse_store(text: &str) -> Result<StoreContents, StoreError> {
    let mut contents = StoreContents::default();
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty())
        .collect();
    for (idx, &(line_no, line)) in lines.iter().enumerate() {
        let is_last = idx + 1 == lines.len();
        match parse_line(line_no, line) {
            Ok(Line::Manifest(m)) => contents.manifests.push(m),
            Ok(Line::Record(r)) => contents.records.push(r),
            Ok(Line::Bench(b)) => contents.benches.push(b),
            Ok(Line::Trace(t)) => contents.traces.push(*t),
            Ok(Line::Unknown) => contents.unknown_kinds += 1,
            Err(e @ StoreError::UnsupportedSchema { .. }) => return Err(e),
            Err(e) => {
                if is_last {
                    // Torn tail from a crash mid-append: tolerated.
                    contents.truncated_tail = true;
                } else {
                    return Err(e);
                }
            }
        }
    }
    Ok(contents)
}

enum Line {
    Manifest(RunManifest),
    Record(RunRecord),
    Bench(BenchRecord),
    // Boxed: a trace line carries a full counter series and would
    // otherwise dominate the enum's size.
    Trace(Box<TraceRecord>),
    Unknown,
}

fn parse_line(line_no: usize, line: &str) -> Result<Line, StoreError> {
    let corrupt = |reason: String| StoreError::Corrupt {
        line: line_no,
        reason,
    };
    let v = Json::parse(line).map_err(|e| corrupt(e.to_string()))?;
    let version = v
        .get("v")
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt("missing schema version \"v\"".into()))?;
    if version > SCHEMA_VERSION {
        return Err(StoreError::UnsupportedSchema {
            line: line_no,
            version,
        });
    }
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("missing line \"kind\"".into()))?;
    let str_field = |key: &str| -> Result<String, StoreError> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| corrupt(format!("missing string field {key:?}")))
    };
    let f64_field = |key: &str| -> Result<f64, StoreError> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| corrupt(format!("missing number field {key:?}")))
    };
    let u64_field = |key: &str| -> Result<u64, StoreError> {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt(format!("missing integer field {key:?}")))
    };
    // v2 lines carry the canonical chaos spec directly; v1 lines carried
    // an iid-only `fault_drop`/`fault_seed` pair, synthesized here into
    // the equivalent canonical spec so old stores key today's caches.
    let chaos_field = || -> Result<String, StoreError> {
        if let Some(spec) = v.get("chaos").and_then(Json::as_str) {
            return Ok(spec.to_string());
        }
        let drop = f64_field("fault_drop")?;
        let seed = u64_field("fault_seed")?;
        if !(0.0..=1.0).contains(&drop) {
            return Err(corrupt(format!("fault_drop {drop} outside [0, 1]")));
        }
        Ok(ChaosPlan::from(kw_sim::FaultPlan::drop_with_probability(drop, seed)).spec())
    };
    match kind {
        "manifest" => {
            let str_arr = |key: &str| -> Result<Vec<String>, StoreError> {
                v.get(key)
                    .and_then(Json::as_arr)
                    .map(|items| {
                        items
                            .iter()
                            .filter_map(Json::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .ok_or_else(|| corrupt(format!("missing array field {key:?}")))
            };
            Ok(Line::Manifest(RunManifest {
                git: str_field("git")?,
                solvers: str_arr("solvers")?,
                workloads: str_arr("workloads")?,
                seeds: v
                    .get("seeds")
                    .and_then(Json::as_arr)
                    .map(|items| items.iter().filter_map(Json::as_u64).collect())
                    .ok_or_else(|| corrupt("missing array field \"seeds\"".into()))?,
                chaos: chaos_field()?,
            }))
        }
        "record" => Ok(Line::Record(RunRecord {
            solver: str_field("solver")?,
            workload: str_field("workload")?,
            n: u64_field("n")? as usize,
            max_degree: u64_field("max_degree")? as usize,
            seed: u64_field("seed")?,
            chaos: chaos_field()?,
            // Pre-v4 records carried no thread count; every pre-v4 sweep
            // ran its cells at the default single-thread context.
            threads: v.get("threads").and_then(Json::as_u64).unwrap_or(1) as usize,
            outcome: RunOutcome {
                dominates: v
                    .get("dominates")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| corrupt("missing bool field \"dominates\"".into()))?,
                size: f64_field("size")?,
                rounds: f64_field("rounds")?,
                messages: f64_field("messages")?,
                bits: f64_field("bits")?,
                ratio_vs_lemma1: f64_field("ratio_vs_lemma1")?,
                wall_ms: f64_field("wall_ms")?,
            },
        })),
        "bench" => Ok(Line::Bench(BenchRecord {
            bench: str_field("bench")?,
            id: str_field("id")?,
            best_ms: f64_field("best_ms")?,
        })),
        "trace" => {
            let phase_us = match v.get("phase_us") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(label, us)| us.as_u64().map(|us| (label.clone(), us)))
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| corrupt("non-integer value in \"phase_us\"".into()))?,
                _ => return Err(corrupt("missing object field \"phase_us\"".into())),
            };
            let samples = v
                .get("samples")
                .and_then(Json::as_arr)
                .ok_or_else(|| corrupt("missing array field \"samples\"".into()))?
                .iter()
                .map(|row| {
                    let cols: Vec<u64> = row
                        .as_arr()
                        .map(|cells| cells.iter().filter_map(Json::as_u64).collect())
                        .unwrap_or_default();
                    // v3 rows carried the six structural counters; v4
                    // appended the two pool deltas (absent reads as 0).
                    match cols[..] {
                        [round, messages, bits, active, arena_bytes, rebuilds] => {
                            Ok(kw_trace::RoundSample {
                                round: round as u32,
                                messages,
                                bits,
                                active,
                                arena_bytes,
                                rebuilds,
                                pool_wakeups: 0,
                                pool_idle: 0,
                            })
                        }
                        [round, messages, bits, active, arena_bytes, rebuilds, pool_wakeups, pool_idle] => {
                            Ok(kw_trace::RoundSample {
                                round: round as u32,
                                messages,
                                bits,
                                active,
                                arena_bytes,
                                rebuilds,
                                pool_wakeups,
                                pool_idle,
                            })
                        }
                        _ => Err(corrupt("malformed \"samples\" row".into())),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Line::Trace(Box::new(TraceRecord {
                solver: str_field("solver")?,
                workload: str_field("workload")?,
                seed: u64_field("seed")?,
                chaos: chaos_field()?,
                summary: kw_trace::TraceSummary {
                    threads: u64_field("threads")? as usize,
                    rounds: u64_field("rounds")?,
                    total_us: u64_field("total_us")?,
                    phase_us,
                    barrier_us: u64_field("barrier_us")?,
                    imbalance: f64_field("imbalance")?,
                    // v4 additions; a v3 trace simply had no pool.
                    pool_wakeups: v.get("pool_wakeups").and_then(Json::as_u64).unwrap_or(0),
                    pool_idle: v.get("pool_idle").and_then(Json::as_u64).unwrap_or(0),
                    structure_hash: u64_field("structure_hash")?,
                    samples,
                },
            })))
        }
        _ => Ok(Line::Unknown),
    }
}

/// `git describe --always --dirty` of the current directory, or
/// `"unknown"` when git is unavailable (manifests must never fail a
/// sweep).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kw_store_test_{}_{tag}.jsonl", std::process::id()))
    }

    fn sample_record(seed: u64) -> RunRecord {
        RunRecord {
            solver: "kw:k=2".into(),
            workload: "grid4".into(),
            n: 16,
            max_degree: 4,
            seed,
            chaos: format!("drop=0.25,seed={}", seed ^ 0xfa),
            threads: 1 + (seed as usize % 4),
            outcome: RunOutcome {
                dominates: seed.is_multiple_of(2),
                size: 4.0 + seed as f64,
                rounds: 18.0,
                messages: 1234.5,
                bits: 9876.0,
                ratio_vs_lemma1: 1.25,
                wall_ms: 0.75,
            },
        }
    }

    #[test]
    fn roundtrips_all_line_kinds() {
        let path = temp_store("roundtrip");
        let _ = std::fs::remove_file(&path);
        let store = RunStore::open(&path).unwrap();
        let manifest = RunManifest {
            git: "abc1234-dirty".into(),
            solvers: vec!["kw:k=2".into(), "greedy".into()],
            workloads: vec!["grid4".into()],
            seeds: vec![0, 1, u64::MAX],
            chaos: "drop=0.1,burst=r3-5@0.9,crash=7@r2,byz=3".into(),
        };
        store.append_manifest(&manifest).unwrap();
        let records: Vec<RunRecord> = (0..3).map(sample_record).collect();
        for r in &records {
            store.append_record(r).unwrap();
        }
        let bench = BenchRecord {
            bench: "engine_flood".into(),
            id: "threads1/1000".into(),
            best_ms: 0.849,
        };
        store.append_bench(&bench).unwrap();
        let contents = store.load().unwrap();
        assert_eq!(contents.manifests, vec![manifest]);
        assert_eq!(contents.records, records);
        assert_eq!(contents.benches, vec![bench]);
        assert!(!contents.truncated_tail);
        assert_eq!(contents.unknown_kinds, 0);
        std::fs::remove_file(&path).unwrap();
    }

    fn sample_trace(seed: u64) -> TraceRecord {
        TraceRecord {
            solver: "kw:k=2".into(),
            workload: "flood10k".into(),
            seed,
            chaos: String::new(),
            summary: kw_trace::TraceSummary {
                threads: 4,
                rounds: 2,
                total_us: 1_234,
                phase_us: vec![
                    ("barrier".into(), 40),
                    ("compute".into(), 700),
                    ("deliver".into(), 120),
                    ("plan".into(), 30),
                    ("send".into(), 200),
                ],
                barrier_us: 40,
                imbalance: 1.25,
                pool_wakeups: 24,
                pool_idle: 3,
                structure_hash: 0xdead_beef_cafe_f00d,
                samples: (0..2)
                    .map(|r| kw_trace::RoundSample {
                        round: r,
                        messages: 100 + u64::from(r),
                        bits: 800,
                        active: 1_000,
                        arena_bytes: 4_096,
                        rebuilds: 0,
                        pool_wakeups: 12,
                        pool_idle: 1 + u64::from(r),
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn trace_lines_roundtrip_exactly() {
        let path = temp_store("trace_roundtrip");
        let _ = std::fs::remove_file(&path);
        let store = RunStore::open(&path).unwrap();
        let traces: Vec<TraceRecord> = (0..2).map(sample_trace).collect();
        for t in &traces {
            store.append_trace(t).unwrap();
        }
        // A trace line must not bleed into the other collections.
        store
            .append_bench(&BenchRecord {
                bench: "engine_flood".into(),
                id: "threads1/1000".into(),
                best_ms: 0.9,
            })
            .unwrap();
        let contents = store.load().unwrap();
        assert_eq!(contents.traces, traces);
        // RoundSample equality deliberately ignores the pool diagnostics,
        // so check the persisted pool columns explicitly.
        for (read, wrote) in contents.traces.iter().zip(&traces) {
            assert_eq!(read.summary.pool_wakeups, wrote.summary.pool_wakeups);
            assert_eq!(read.summary.pool_idle, wrote.summary.pool_idle);
            for (a, b) in read.summary.samples.iter().zip(&wrote.summary.samples) {
                assert_eq!(a.pool_wakeups, b.pool_wakeups);
                assert_eq!(a.pool_idle, b.pool_idle);
            }
        }
        assert_eq!(contents.benches.len(), 1);
        assert_eq!(contents.records.len(), 0);
        assert_eq!(contents.unknown_kinds, 0);
        // One line per trace, no matter how long the counter series is.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    /// v3 lines (no `threads` on records, six-column trace samples, no
    /// pool totals) must read as single-thread / zero-pool data.
    #[test]
    fn v3_lines_read_with_default_threads_and_zero_pool() {
        let text = "{\"v\":3,\"kind\":\"record\",\"solver\":\"kw:k=2\",\"workload\":\"grid4\",\
                    \"n\":16,\"max_degree\":4,\"seed\":0,\"chaos\":\"\",\
                    \"dominates\":true,\"size\":4,\"rounds\":18,\"messages\":10,\"bits\":20,\
                    \"ratio_vs_lemma1\":1.5,\"wall_ms\":0.5}\n\
                    {\"v\":3,\"kind\":\"trace\",\"solver\":\"s\",\"workload\":\"w\",\"seed\":0,\
                    \"chaos\":\"\",\"threads\":2,\"rounds\":1,\"total_us\":9,\"barrier_us\":1,\
                    \"imbalance\":1.0,\"structure_hash\":7,\"phase_us\":{\"compute\":8},\
                    \"samples\":[[0,1,2,3,4,0]]}\n";
        let contents = parse_store(text).unwrap();
        assert_eq!(contents.records[0].threads, 1);
        let t = &contents.traces[0].summary;
        assert_eq!((t.pool_wakeups, t.pool_idle), (0, 0));
        assert_eq!(t.samples.len(), 1);
        assert_eq!((t.samples[0].pool_wakeups, t.samples[0].pool_idle), (0, 0));
    }

    #[test]
    fn malformed_trace_lines_are_corrupt_not_skipped() {
        let bad = format!(
            "{{\"v\":{SCHEMA_VERSION},\"kind\":\"trace\",\"solver\":\"s\",\"workload\":\"w\",\
             \"seed\":0,\"chaos\":\"\",\"threads\":1,\"rounds\":1,\"total_us\":1,\
             \"barrier_us\":0,\"imbalance\":1.0,\"structure_hash\":1,\
             \"phase_us\":{{\"compute\":1}},\"samples\":[[1,2,3]]}}\nx\n"
        );
        assert!(matches!(
            parse_store(&bad),
            Err(StoreError::Corrupt { line: 1, .. })
        ));
    }

    #[test]
    fn torn_tail_is_tolerated_by_load_and_repaired_by_open() {
        let path = temp_store("torn");
        let _ = std::fs::remove_file(&path);
        {
            let store = RunStore::open(&path).unwrap();
            store.append_record(&sample_record(0)).unwrap();
            store.append_record(&sample_record(1)).unwrap();
        }
        // Simulate a crash mid-append: half a line, no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let torn_len = text.len();
        text.push_str("{\"v\":1,\"kind\":\"rec");
        std::fs::write(&path, &text).unwrap();
        {
            // Read-only consumers see both complete records.
            let store = RunStore::open(&path).unwrap();
            let contents = store.load().unwrap();
            assert_eq!(contents.records.len(), 2);
        }
        // Open repaired the tail, so the file is back to clean lines and
        // a subsequent append starts fresh.
        assert_eq!(std::fs::read_to_string(&path).unwrap().len(), torn_len);
        let store = RunStore::open(&path).unwrap();
        store.append_record(&sample_record(2)).unwrap();
        let contents = store.load().unwrap();
        assert_eq!(contents.records.len(), 3);
        assert!(!contents.truncated_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn midfile_corruption_is_an_error_not_a_skip() {
        let text = "{\"v\":1,\"kind\":\"bench\",\"bench\":\"b\",\"id\":\"i\",\"best_ms\":1}\n\
                    not json at all\n\
                    {\"v\":1,\"kind\":\"bench\",\"bench\":\"b\",\"id\":\"j\",\"best_ms\":2}\n";
        match parse_store(text) {
            Err(StoreError::Corrupt { line: 2, .. }) => {}
            other => panic!("expected Corrupt at line 2, got {other:?}"),
        }
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let text = format!(
            "{{\"v\":{},\"kind\":\"bench\",\"bench\":\"b\",\"id\":\"i\",\"best_ms\":1}}\n",
            SCHEMA_VERSION + 1
        );
        assert!(matches!(
            parse_store(&text),
            Err(StoreError::UnsupportedSchema { line: 1, .. })
        ));
    }

    #[test]
    fn unknown_kinds_of_current_version_are_skipped_and_counted() {
        let text = "{\"v\":1,\"kind\":\"novelty\",\"payload\":[1,2,3]}\n\
                    {\"v\":1,\"kind\":\"bench\",\"bench\":\"b\",\"id\":\"i\",\"best_ms\":1}\n";
        let contents = parse_store(text).unwrap();
        assert_eq!(contents.unknown_kinds, 1);
        assert_eq!(contents.benches.len(), 1);
    }

    #[test]
    fn replay_into_seeds_a_cache() {
        let path = temp_store("replay");
        let _ = std::fs::remove_file(&path);
        let store = RunStore::open(&path).unwrap();
        for seed in 0..4 {
            store.append_record(&sample_record(seed)).unwrap();
        }
        let cache = ExperimentCache::new();
        assert_eq!(store.replay_into(&cache).unwrap(), 4);
        // Replay counts as neither hit nor miss until a sweep looks up.
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        std::fs::remove_file(&path).unwrap();
    }

    /// v1 stores carried `fault_drop`/`fault_seed` instead of a `chaos`
    /// string; readers must map them onto the equivalent canonical
    /// iid-only chaos spec so old stores still replay and key caches.
    #[test]
    fn v1_legacy_fault_fields_map_to_canonical_chaos_specs() {
        let text = "{\"v\":1,\"kind\":\"manifest\",\"git\":\"abc\",\"solvers\":[\"kw:k=2\"],\
                    \"workloads\":[\"grid4\"],\"seeds\":[0],\"fault_drop\":0.25,\"fault_seed\":9}\n\
                    {\"v\":1,\"kind\":\"record\",\"solver\":\"kw:k=2\",\"workload\":\"grid4\",\
                    \"n\":16,\"max_degree\":4,\"seed\":0,\"fault_drop\":0.25,\"fault_seed\":9,\
                    \"dominates\":true,\"size\":4,\"rounds\":18,\"messages\":10,\"bits\":20,\
                    \"ratio_vs_lemma1\":1.5,\"wall_ms\":0.5}\n\
                    {\"v\":1,\"kind\":\"record\",\"solver\":\"kw:k=2\",\"workload\":\"grid4\",\
                    \"n\":16,\"max_degree\":4,\"seed\":1,\"fault_drop\":0.0,\"fault_seed\":0,\
                    \"dominates\":true,\"size\":4,\"rounds\":18,\"messages\":10,\"bits\":20,\
                    \"ratio_vs_lemma1\":1.5,\"wall_ms\":0.5}\n";
        let contents = parse_store(text).unwrap();
        assert_eq!(contents.manifests[0].chaos, "drop=0.25,seed=9");
        assert_eq!(contents.records[0].chaos, "drop=0.25,seed=9");
        // A reliable v1 pair maps to the canonical empty spec.
        assert_eq!(contents.records[1].chaos, "");
        // The synthesized specs parse back to the plans they describe.
        let plan = ChaosPlan::parse(&contents.records[0].chaos).unwrap();
        assert_eq!(plan.drop_probability(), 0.25);
        assert_eq!(plan.seed(), 9);
        // A v1 line with an impossible probability is corrupt, not UB.
        let bad = "{\"v\":1,\"kind\":\"record\",\"solver\":\"s\",\"workload\":\"w\",\
                   \"n\":1,\"max_degree\":0,\"seed\":0,\"fault_drop\":1.5,\"fault_seed\":0,\
                   \"dominates\":true,\"size\":1,\"rounds\":1,\"messages\":0,\"bits\":0,\
                   \"ratio_vs_lemma1\":1,\"wall_ms\":0}\nx\n";
        assert!(matches!(
            parse_store(bad),
            Err(StoreError::Corrupt { line: 1, .. })
        ));
    }

    #[test]
    fn git_describe_never_fails() {
        assert!(!git_describe().is_empty());
    }

    #[test]
    fn second_writer_fails_fast_and_drop_releases_the_lock() {
        let path = temp_store("locked");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(lock_path_for(&path));
        let first = RunStore::open(&path).unwrap();
        // A contending writer on the same path is refused with the pid.
        match RunStore::open(&path) {
            Err(StoreError::Locked { path: p, holder }) => {
                assert_eq!(p, path);
                assert_eq!(holder, format!("{} (this process)", std::process::id()));
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        // Read-only loads are not blocked by the writer lock.
        first.append_record(&sample_record(0)).unwrap();
        assert_eq!(load_path(&path).unwrap().records.len(), 1);
        // Dropping the holder releases the lock for the next writer.
        drop(first);
        let second = RunStore::open(&path).unwrap();
        second.append_record(&sample_record(1)).unwrap();
        drop(second);
        assert!(
            !lock_path_for(&path).exists(),
            "drop must remove the lock file"
        );
        assert_eq!(load_path(&path).unwrap().records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_stolen() {
        let path = temp_store("stale_lock");
        let _ = std::fs::remove_file(&path);
        // A pid that cannot be live: pid_max on Linux is < 2^22 by
        // default and never exceeds u32 range; u32::MAX is safely dead.
        std::fs::write(lock_path_for(&path), format!("{}", u32::MAX)).unwrap();
        let store = RunStore::open(&path).expect("stale lock is stolen");
        store.append_record(&sample_record(0)).unwrap();
        drop(store);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unreadable_lock_holder_is_respected_not_stolen() {
        let path = temp_store("garbage_lock");
        let _ = std::fs::remove_file(&path);
        std::fs::write(lock_path_for(&path), "not-a-pid").unwrap();
        match RunStore::open(&path) {
            Err(StoreError::Locked { holder, .. }) => assert_eq!(holder, "not-a-pid"),
            other => panic!("expected Locked, got {other:?}"),
        }
        std::fs::remove_file(lock_path_for(&path)).unwrap();
    }

    /// The contended case: writers racing for one path. At most one may
    /// hold the store at a time; every append that went through lands as
    /// a whole, parseable line.
    #[test]
    fn contended_writers_serialize_without_torn_lines() {
        let path = temp_store("contended");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(lock_path_for(&path));
        let holders = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let appended = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let (path, holders, appended) = (path.clone(), holders.clone(), appended.clone());
                scope.spawn(move || {
                    for attempt in 0..20u64 {
                        match RunStore::open(&path) {
                            Ok(store) => {
                                let now = holders.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                                assert_eq!(now, 0, "two writers held the lock at once");
                                store
                                    .append_record(&sample_record(t * 100 + attempt))
                                    .unwrap();
                                appended.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                                holders.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                                drop(store);
                            }
                            Err(StoreError::Locked { .. }) => {
                                std::thread::yield_now();
                            }
                            Err(other) => panic!("unexpected store error: {other}"),
                        }
                    }
                });
            }
        });
        let contents = load_path(&path).unwrap();
        assert!(!contents.truncated_tail);
        assert_eq!(
            contents.records.len(),
            appended.load(std::sync::atomic::Ordering::SeqCst) as usize,
            "every successful append is one whole line"
        );
        assert!(
            contents.records.len() >= 20,
            "at least one thread got through"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
