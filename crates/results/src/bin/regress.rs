//! Regression gate over run stores.
//!
//! ```text
//! regress <baseline.jsonl> <candidate.jsonl> [--time-ratio R]
//!         [--quality-ratio R] [--min-wall-ms X]
//! regress --validate <store.jsonl>
//! ```
//!
//! Compares the candidate store's summary (and bench lines) against the
//! baseline's; prints every finding and exits 1 if any, 0 when clean,
//! 2 on usage or load errors. `--validate` just schema-checks one store
//! (CI uses it on freshly written bench stores, whose absolute timings
//! are machine-dependent and therefore not gated).

use kw_results::regress::{compare, compare_benches, RegressPolicy};
use kw_results::store::{load_path, StoreContents};
use kw_results::summary::Summary;

fn usage() -> ! {
    eprintln!(
        "usage: regress <baseline.jsonl> <candidate.jsonl> \
         [--time-ratio R] [--quality-ratio R] [--min-wall-ms X]\n\
         \x20      regress --validate <store.jsonl>"
    );
    std::process::exit(2);
}

fn load(path: &str) -> StoreContents {
    // Strictly read-only: a gate must never conjure a missing baseline
    // into existence and call it a pass, repair tails, or contend for
    // the writer lock a live daemon or sweep is holding.
    if !std::path::Path::new(path).exists() {
        eprintln!("regress: store {path} does not exist");
        std::process::exit(2);
    }
    match load_path(path) {
        Ok(contents) => contents,
        Err(e) => {
            eprintln!("regress: cannot load {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--validate") {
        let [_, path] = args.as_slice() else { usage() };
        let contents = load(path);
        println!(
            "{path}: valid ({} manifests, {} records, {} bench lines{})",
            contents.manifests.len(),
            contents.records.len(),
            contents.benches.len(),
            if contents.truncated_tail {
                ", torn tail skipped"
            } else {
                ""
            }
        );
        return;
    }
    let mut policy = RegressPolicy::default();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag = |target: &mut f64| match it.next().and_then(|v| v.parse().ok()) {
            Some(v) => *target = v,
            None => usage(),
        };
        match arg.as_str() {
            "--time-ratio" => flag(&mut policy.max_time_ratio),
            "--quality-ratio" => flag(&mut policy.max_quality_ratio),
            "--min-wall-ms" => flag(&mut policy.min_wall_ms),
            _ if arg.starts_with("--") => usage(),
            _ => paths.push(arg.clone()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        usage()
    };
    let baseline = load(baseline_path);
    let candidate = load(candidate_path);
    let mut findings = compare(
        &Summary::from_records(&baseline.records),
        &Summary::from_records(&candidate.records),
        &policy,
    );
    findings.extend(compare_benches(
        &baseline.benches,
        &candidate.benches,
        &policy,
    ));
    if findings.is_empty() {
        println!(
            "regress: OK — {candidate_path} holds the line against {baseline_path} \
             (time budget {:.0}%, quality budget {:.0}%)",
            (policy.max_time_ratio - 1.0) * 100.0,
            (policy.max_quality_ratio - 1.0) * 100.0,
        );
        return;
    }
    eprintln!(
        "regress: {} regression(s) in {candidate_path} vs {baseline_path}:",
        findings.len()
    );
    for finding in &findings {
        eprintln!("  {finding}");
    }
    std::process::exit(1);
}
