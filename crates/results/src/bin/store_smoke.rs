//! CI end-to-end check of the streaming results pipeline: run a tiny
//! streaming sweep into a fresh store, validate every emitted JSONL
//! line against the schema, then resume the sweep in a second session
//! and require 100% cache hits.
//!
//! Exits non-zero (via panic) on any violation; prints a short
//! transcript otherwise. `KW_STORE_SMOKE_PATH` overrides the store
//! location (default: a per-process file under the system temp dir).

use kw_core::solver::{ExperimentRunner, RunEvent, SolverRegistry};
use kw_graph::generators;
use kw_results::pipeline::SweepSession;
use kw_results::store::SCHEMA_VERSION;

fn main() {
    let path = std::env::var("KW_STORE_SMOKE_PATH").unwrap_or_else(|_| {
        std::env::temp_dir()
            .join(format!("kw_store_smoke_{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let _ = std::fs::remove_file(&path);
    println!("store smoke: {path}");

    let registry = SolverRegistry::with_core_solvers();
    let solvers = registry
        .build_all(["kw:k=2", "composite:k=2"])
        .expect("core specs registered");
    let workloads = vec![
        ("grid4".to_string(), generators::grid(4, 4)),
        ("petersen".to_string(), generators::petersen()),
    ];
    let seeds = 0..3u64;
    let total = solvers.len() * workloads.len() * 3;
    let runner = ExperimentRunner::new().workers(2);

    // Pass 1: fresh store, everything solves.
    let mut session = SweepSession::open(&path).expect("open fresh store");
    assert_eq!(session.replayed(), 0, "fresh store must replay nothing");
    let mut events = 0usize;
    let out = session
        .run(&runner, &solvers, &workloads, seeds.clone(), |ev| {
            if ev.is_terminal() {
                events += 1;
            }
        })
        .expect("first sweep runs");
    assert_eq!(events, total, "one terminal event per cell");
    assert_eq!(
        (out.solved, out.cached, out.failed),
        (total as u64, 0, 0),
        "first pass solves every cell"
    );
    assert!(out.store_error.is_none(), "appends must succeed");
    println!("pass 1: solved {} cells, {} events", out.solved, events);
    // Release the writer lock before the resume session takes it.
    drop(session);

    // Validate the emitted JSONL against the schema (read-only; no
    // writer lock needed).
    let contents = kw_results::store::load_path(&path).expect("store validates against the schema");
    assert_eq!(contents.manifests.len(), 1, "one manifest per sweep");
    assert_eq!(contents.records.len(), total, "one record per solved cell");
    assert!(!contents.truncated_tail, "no torn tail after clean run");
    assert_eq!(contents.unknown_kinds, 0);
    let manifest = &contents.manifests[0];
    assert_eq!(manifest.solvers.len(), solvers.len());
    assert_eq!(manifest.seeds, vec![0, 1, 2]);
    println!(
        "validated: schema v{SCHEMA_VERSION}, {} manifests, {} records (git {})",
        contents.manifests.len(),
        contents.records.len(),
        manifest.git,
    );

    // Pass 2: a new session over the same store must resume to 100%
    // cache hits — zero fresh solves.
    let mut resumed = SweepSession::open(&path).expect("reopen for resume");
    assert_eq!(resumed.replayed(), total, "replay every stored record");
    let mut cached_events = 0usize;
    let out2 = resumed
        .run(&runner, &solvers, &workloads, seeds, |ev| {
            if matches!(ev, RunEvent::CellCached { .. }) {
                cached_events += 1;
            }
        })
        .expect("resumed sweep runs");
    assert_eq!(
        (out2.solved, out2.cached),
        (0, total as u64),
        "resume must be 100% cache hits"
    );
    assert_eq!(cached_events, total);
    let cache = resumed.cache();
    assert_eq!(cache.hits(), total as u64);
    assert_eq!(cache.misses(), 0);

    // Resumed results equal the originals bit for bit.
    for (a, b) in out.cells.iter().zip(&out2.cells) {
        assert_eq!(a.size, b.size, "{}/{}", a.solver, a.workload);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
    }
    println!(
        "pass 2: resumed with {}/{} cache hits, 0 solves — results identical",
        out2.cached, total
    );
    let _ = std::fs::remove_file(&path);
    println!("store smoke OK");
}
