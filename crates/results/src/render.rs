//! Fixed-width table rendering for experiment outputs.
//!
//! Moved here from `kw_bench::table` when the results pipeline landed,
//! so every consumer of run data (experiment binaries, the `regress`
//! tool, summaries) shares one renderer; `kw_bench::table` re-exports
//! [`Table`] for the remaining classic drivers.

/// A simple right-aligned table that renders to aligned text or CSV.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["a", "bbb"]);
        t.row(["1", "2"]).row(["100", "20000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbb"));
        assert!(lines[3].ends_with("20000"));
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        Table::new(["only"]).row(["a", "b"]);
    }
}
