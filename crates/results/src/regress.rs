//! Regression gating: diff a fresh [`Summary`] (or bench records)
//! against a stored baseline and flag quality or time regressions.
//!
//! The policy is asymmetric on purpose: *quality* regressions use a
//! tight relative tolerance (set sizes are deterministic given seeds, so
//! any growth is a real algorithmic change), while *time* regressions
//! use the classic ≥20% threshold with an absolute floor below which
//! timer noise drowns the signal.

use std::fmt;

use crate::store::{BenchRecord, TraceRecord};
use crate::summary::Summary;

/// Thresholds for [`compare`] / [`compare_benches`] / [`compare_traces`].
#[derive(Clone, Copy, Debug)]
pub struct RegressPolicy {
    /// A cell's mean wall time (or a bench's best-of-N) may grow to at
    /// most `baseline × max_time_ratio` (default 1.2 — a 20% slowdown
    /// fails).
    pub max_time_ratio: f64,
    /// A cell's mean set size may grow to at most
    /// `baseline × max_quality_ratio` (default 1.02).
    pub max_quality_ratio: f64,
    /// Baseline cells faster than this (ms) are exempt from the time
    /// gate (default 0.05 ms — sub-tick noise).
    pub min_wall_ms: f64,
    /// A traced phase's share of phase time may drift from the baseline
    /// by at most this, absolute (default 0.15 — compute going from 60%
    /// to 80% of a solve fails). Shares are ratios, so this gate is
    /// immune to the machine being uniformly faster or slower; it fires
    /// only when the *shape* of where time goes changes.
    pub max_phase_share_drift: f64,
    /// A multi-thread trace's speedup over the matching 1-thread trace
    /// (`total_us(1T) / total_us(kT)`) may shrink to at most
    /// `baseline_speedup × (1 − max_scaling_drop)` (default 0.2 — a run
    /// that used to scale 2.0× at 4 threads fails below 1.6×). Speedups
    /// are ratios of same-machine runs, so this gate is immune to the
    /// box being uniformly faster or slower; it fires only when threads
    /// stop paying off relative to the recorded baseline.
    pub max_scaling_drop: f64,
}

impl Default for RegressPolicy {
    fn default() -> Self {
        RegressPolicy {
            max_time_ratio: 1.2,
            max_quality_ratio: 1.02,
            min_wall_ms: 0.05,
            max_phase_share_drift: 0.15,
            max_scaling_drop: 0.2,
        }
    }
}

/// One detected regression.
#[derive(Clone, Debug, PartialEq)]
pub enum Regression {
    /// Mean set size grew beyond the quality tolerance.
    Quality {
        /// Solver spec of the regressing cell.
        solver: String,
        /// Workload label of the regressing cell.
        workload: String,
        /// Baseline mean size.
        baseline: f64,
        /// Fresh mean size.
        fresh: f64,
    },
    /// More non-dominating runs than the baseline.
    MoreFailures {
        /// Solver spec of the regressing cell.
        solver: String,
        /// Workload label of the regressing cell.
        workload: String,
        /// Baseline failure count.
        baseline: usize,
        /// Fresh failure count.
        fresh: usize,
    },
    /// Mean wall time grew beyond the time threshold.
    Time {
        /// Solver spec of the regressing cell.
        solver: String,
        /// Workload label of the regressing cell.
        workload: String,
        /// Baseline mean wall time, ms.
        baseline_ms: f64,
        /// Fresh mean wall time, ms.
        fresh_ms: f64,
    },
    /// A baseline cell is absent from the fresh summary.
    MissingCell {
        /// Solver spec of the absent cell.
        solver: String,
        /// Workload label of the absent cell.
        workload: String,
    },
    /// A benchmark's best-of-N grew beyond the time threshold.
    BenchTime {
        /// Benchmark group.
        bench: String,
        /// Benchmark id.
        id: String,
        /// Baseline time, ms.
        baseline_ms: f64,
        /// Fresh time, ms.
        fresh_ms: f64,
    },
    /// A baseline benchmark is absent from the fresh measurements.
    MissingBench {
        /// Benchmark group.
        bench: String,
        /// Benchmark id.
        id: String,
    },
    /// A traced phase's share of phase time drifted beyond tolerance.
    PhaseShare {
        /// Solver spec of the drifting trace.
        solver: String,
        /// Workload label (with threads, e.g. `flood10k@4t`).
        workload: String,
        /// The drifting phase.
        phase: String,
        /// Baseline share of phase time, in [0, 1].
        baseline: f64,
        /// Fresh share of phase time, in [0, 1].
        fresh: f64,
    },
    /// A traced workload's multi-thread speedup over its own 1-thread
    /// run shrank beyond the scaling tolerance.
    Scaling {
        /// Solver spec of the regressing trace.
        solver: String,
        /// Workload label (chaos folded in as `workload (chaos:spec)`).
        workload: String,
        /// Worker thread count of the regressing trace.
        threads: usize,
        /// Baseline speedup `total_us(1T) / total_us(kT)`.
        baseline: f64,
        /// Fresh speedup on the same key.
        fresh: f64,
    },
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regression::Quality {
                solver,
                workload,
                baseline,
                fresh,
            } => write!(
                f,
                "QUALITY  {solver} on {workload}: mean |DS| {baseline:.2} -> {fresh:.2} ({:+.1}%)",
                100.0 * (fresh / baseline - 1.0)
            ),
            Regression::MoreFailures {
                solver,
                workload,
                baseline,
                fresh,
            } => write!(
                f,
                "FAILURES {solver} on {workload}: non-dominating runs {baseline} -> {fresh}"
            ),
            Regression::Time {
                solver,
                workload,
                baseline_ms,
                fresh_ms,
            } => write!(
                f,
                "TIME     {solver} on {workload}: mean wall {baseline_ms:.3} ms -> {fresh_ms:.3} ms ({:.2}x)",
                fresh_ms / baseline_ms
            ),
            Regression::MissingCell { solver, workload } => {
                write!(f, "MISSING  {solver} on {workload}: cell absent from fresh run")
            }
            Regression::BenchTime {
                bench,
                id,
                baseline_ms,
                fresh_ms,
            } => write!(
                f,
                "TIME     bench {bench}/{id}: {baseline_ms:.3} ms -> {fresh_ms:.3} ms ({:.2}x)",
                fresh_ms / baseline_ms
            ),
            Regression::MissingBench { bench, id } => {
                write!(f, "MISSING  bench {bench}/{id}: absent from fresh measurements")
            }
            Regression::PhaseShare {
                solver,
                workload,
                phase,
                baseline,
                fresh,
            } => write!(
                f,
                "PHASE    {solver} on {workload}: {phase} share {:.0}% -> {:.0}% of phase time",
                100.0 * baseline,
                100.0 * fresh
            ),
            Regression::Scaling {
                solver,
                workload,
                threads,
                baseline,
                fresh,
            } => write!(
                f,
                "SCALING  {solver} on {workload}@{threads}t: speedup vs 1t {baseline:.2}x -> {fresh:.2}x"
            ),
        }
    }
}

/// Diffs `fresh` against `baseline` cell by cell, matching on
/// `(solver, workload, chaos)` — a chaotic cell is only ever compared
/// against the same chaos plan, never against the clean baseline of the
/// same workload. Cells only in `fresh` are ignored (new coverage is not
/// a regression); cells only in `baseline` are reported as
/// [`Regression::MissingCell`]. In findings, a non-reliable chaos spec
/// is folded into the workload display as `workload (chaos:spec)`.
pub fn compare(baseline: &Summary, fresh: &Summary, policy: &RegressPolicy) -> Vec<Regression> {
    let mut findings = Vec::new();
    for base in &baseline.cells {
        let workload = if base.chaos.is_empty() {
            base.workload.clone()
        } else {
            format!("{} (chaos:{})", base.workload, base.chaos)
        };
        let Some(new) = fresh.cell_under(&base.solver, &base.workload, &base.chaos) else {
            findings.push(Regression::MissingCell {
                solver: base.solver.clone(),
                workload,
            });
            continue;
        };
        if new.failures > base.failures {
            findings.push(Regression::MoreFailures {
                solver: base.solver.clone(),
                workload: workload.clone(),
                baseline: base.failures,
                fresh: new.failures,
            });
        }
        if base.size.count > 0
            && new.size.count > 0
            && new.size.mean > base.size.mean * policy.max_quality_ratio + 1e-9
        {
            findings.push(Regression::Quality {
                solver: base.solver.clone(),
                workload: workload.clone(),
                baseline: base.size.mean,
                fresh: new.size.mean,
            });
        }
        if base.wall_ms.mean >= policy.min_wall_ms
            && new.wall_ms.mean > base.wall_ms.mean * policy.max_time_ratio
        {
            findings.push(Regression::Time {
                solver: base.solver.clone(),
                workload: workload.clone(),
                baseline_ms: base.wall_ms.mean,
                fresh_ms: new.wall_ms.mean,
            });
        }
    }
    findings
}

/// Diffs fresh benchmark measurements against stored baselines, matched
/// by `(bench, id)`. Duplicate fresh measurements keep the last (a
/// re-run bench appends; the newest number is the current state).
pub fn compare_benches(
    baseline: &[BenchRecord],
    fresh: &[BenchRecord],
    policy: &RegressPolicy,
) -> Vec<Regression> {
    let latest = |records: &[BenchRecord], bench: &str, id: &str| -> Option<f64> {
        records
            .iter()
            .rev()
            .find(|r| r.bench == bench && r.id == id)
            .map(|r| r.best_ms)
    };
    let mut findings = Vec::new();
    let mut seen: Vec<(&str, &str)> = Vec::new();
    for base in baseline {
        let key = (base.bench.as_str(), base.id.as_str());
        if seen.contains(&key) {
            continue; // each (bench, id) compares once, latest vs latest
        }
        seen.push(key);
        let base_ms = latest(baseline, &base.bench, &base.id).expect("key came from this slice");
        match latest(fresh, &base.bench, &base.id) {
            None => findings.push(Regression::MissingBench {
                bench: base.bench.clone(),
                id: base.id.clone(),
            }),
            Some(fresh_ms) => {
                if base_ms >= policy.min_wall_ms && fresh_ms > base_ms * policy.max_time_ratio {
                    findings.push(Regression::BenchTime {
                        bench: base.bench.clone(),
                        id: base.id.clone(),
                        baseline_ms: base_ms,
                        fresh_ms,
                    });
                }
            }
        }
    }
    findings
}

/// Diffs fresh trace rollups against stored baselines, matched by
/// `(solver, workload, chaos, threads)` — a 4-thread profile is only
/// ever compared against a 4-thread baseline, since phase shares shift
/// legitimately with the worker count. Duplicates keep the last on both
/// sides (re-profiles append). Missing traces are *not* findings: a
/// profile run covers whatever matrix it chose that day, and phase-share
/// drift is the only signal this gate exists for.
pub fn compare_traces(
    baseline: &[TraceRecord],
    fresh: &[TraceRecord],
    policy: &RegressPolicy,
) -> Vec<Regression> {
    let key = |t: &TraceRecord| {
        (
            t.solver.clone(),
            t.workload.clone(),
            t.chaos.clone(),
            t.summary.threads,
        )
    };
    let mut findings = Vec::new();
    let mut seen = Vec::new();
    for base in baseline.iter().rev() {
        let k = key(base);
        if seen.contains(&k) {
            continue; // latest baseline per key wins
        }
        seen.push(k);
        let Some(new) = fresh.iter().rev().find(|t| key(t) == key(base)) else {
            continue;
        };
        for phase in kw_trace::PHASES {
            let b = base.summary.phase_share(phase);
            let f = new.summary.phase_share(phase);
            if (f - b).abs() > policy.max_phase_share_drift {
                let workload = if base.chaos.is_empty() {
                    format!("{}@{}t", base.workload, base.summary.threads)
                } else {
                    format!(
                        "{}@{}t (chaos:{})",
                        base.workload, base.summary.threads, base.chaos
                    )
                };
                findings.push(Regression::PhaseShare {
                    solver: base.solver.clone(),
                    workload,
                    phase: phase.to_string(),
                    baseline: b,
                    fresh: f,
                });
            }
        }
    }
    findings
}

/// Gates multi-thread scaling: for every `(solver, workload, chaos, k)`
/// with `k > 1` that has a matching 1-thread trace on the *same side*,
/// the speedup is `total_us(1T) / total_us(kT)` — threads are only
/// credited against the same workload on the same machine. A fresh
/// speedup below `baseline_speedup × (1 − max_scaling_drop)` is a
/// [`Regression::Scaling`] finding. Keys missing a 1-thread anchor (on
/// either side) or absent from the fresh traces are skipped, like
/// [`compare_traces`]: profile runs cover whatever matrix they chose.
/// Duplicates keep the last per key (re-profiles append).
pub fn compare_scaling(
    baseline: &[TraceRecord],
    fresh: &[TraceRecord],
    policy: &RegressPolicy,
) -> Vec<Regression> {
    let latest = |records: &[TraceRecord], t: &TraceRecord, threads: usize| -> Option<u64> {
        records
            .iter()
            .rev()
            .find(|r| {
                r.solver == t.solver
                    && r.workload == t.workload
                    && r.chaos == t.chaos
                    && r.summary.threads == threads
            })
            .map(|r| r.summary.total_us)
    };
    let speedup = |records: &[TraceRecord], t: &TraceRecord| -> Option<f64> {
        let one = latest(records, t, 1)?;
        let multi = latest(records, t, t.summary.threads)?;
        (multi > 0).then(|| one as f64 / multi as f64)
    };
    let mut findings = Vec::new();
    let mut seen = Vec::new();
    for base in baseline.iter().rev() {
        if base.summary.threads <= 1 {
            continue;
        }
        let k = (
            base.solver.clone(),
            base.workload.clone(),
            base.chaos.clone(),
            base.summary.threads,
        );
        if seen.contains(&k) {
            continue; // latest baseline per key wins
        }
        seen.push(k);
        let (Some(b), Some(f)) = (speedup(baseline, base), speedup(fresh, base)) else {
            continue;
        };
        if f < b * (1.0 - policy.max_scaling_drop) {
            let workload = if base.chaos.is_empty() {
                base.workload.clone()
            } else {
                format!("{} (chaos:{})", base.workload, base.chaos)
            };
            findings.push(Regression::Scaling {
                solver: base.solver.clone(),
                workload,
                threads: base.summary.threads,
                baseline: b,
                fresh: f,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_core::solver::{RunOutcome, RunRecord};

    fn record(solver: &str, workload: &str, seed: u64, size: f64, wall_ms: f64) -> RunRecord {
        RunRecord {
            solver: solver.into(),
            workload: workload.into(),
            n: 64,
            max_degree: 8,
            seed,
            chaos: String::new(),
            threads: 1,
            outcome: RunOutcome {
                dominates: true,
                size,
                rounds: 18.0,
                messages: 500.0,
                bits: 4000.0,
                ratio_vs_lemma1: size / 7.0,
                wall_ms,
            },
        }
    }

    fn summary(scale_size: f64, scale_time: f64) -> Summary {
        Summary::from_records(&[
            record("kw:k=2", "grid", 0, 10.0 * scale_size, 2.0 * scale_time),
            record("kw:k=2", "grid", 1, 12.0 * scale_size, 2.2 * scale_time),
            record("greedy", "grid", 0, 8.0 * scale_size, 0.5 * scale_time),
        ])
    }

    #[test]
    fn identical_summaries_pass() {
        let base = summary(1.0, 1.0);
        assert!(compare(&base, &base, &RegressPolicy::default()).is_empty());
    }

    #[test]
    fn injected_2x_slowdown_fails_the_time_gate() {
        let base = summary(1.0, 1.0);
        let slow = summary(1.0, 2.0);
        let findings = compare(&base, &slow, &RegressPolicy::default());
        assert_eq!(findings.len(), 2, "both cells slowed down 2x: {findings:?}");
        assert!(findings
            .iter()
            .all(|r| matches!(r, Regression::Time { .. })));
        // Within the 20% budget: no finding.
        let ok = summary(1.0, 1.15);
        assert!(compare(&base, &ok, &RegressPolicy::default()).is_empty());
    }

    #[test]
    fn quality_growth_fails_the_quality_gate() {
        let base = summary(1.0, 1.0);
        let worse = summary(1.10, 1.0);
        let findings = compare(&base, &worse, &RegressPolicy::default());
        assert!(findings
            .iter()
            .any(|r| matches!(r, Regression::Quality { .. })));
        // 1% growth is within the default 2% tolerance.
        let ok = summary(1.01, 1.0);
        assert!(compare(&base, &ok, &RegressPolicy::default()).is_empty());
    }

    #[test]
    fn new_failures_and_missing_cells_are_flagged() {
        let base = summary(1.0, 1.0);
        let mut bad_records = vec![
            record("kw:k=2", "grid", 0, 10.0, 2.0),
            record("kw:k=2", "grid", 1, 12.0, 2.2),
        ];
        bad_records[1].outcome.dominates = false;
        let fresh = Summary::from_records(&bad_records); // greedy cell gone too
        let findings = compare(&base, &fresh, &RegressPolicy::default());
        assert!(findings
            .iter()
            .any(|r| matches!(r, Regression::MoreFailures { .. })));
        assert!(findings
            .iter()
            .any(|r| matches!(r, Regression::MissingCell { solver, .. } if solver == "greedy")));
    }

    #[test]
    fn chaos_cells_gate_independently_of_clean_cells() {
        let chaotic = |size: f64| {
            let mut r = record("kw:k=2", "grid", 0, size, 2.0);
            r.chaos = "drop=0.2,seed=7".into();
            r
        };
        let base = Summary::from_records(&[record("kw:k=2", "grid", 0, 10.0, 2.0), chaotic(14.0)]);
        // The chaotic cell degrades; the clean cell is unchanged. Only
        // the chaotic cell may be flagged — and under its chaos label.
        let fresh = Summary::from_records(&[record("kw:k=2", "grid", 0, 10.0, 2.0), chaotic(16.0)]);
        let findings = compare(&base, &fresh, &RegressPolicy::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(matches!(
            &findings[0],
            Regression::Quality { workload, .. } if workload == "grid (chaos:drop=0.2,seed=7)"
        ));
        // A fresh run that dropped the chaotic cell but kept the clean
        // one reports exactly the chaotic cell missing, not the clean.
        let clean_only = Summary::from_records(&[record("kw:k=2", "grid", 0, 10.0, 2.0)]);
        let findings = compare(&base, &clean_only, &RegressPolicy::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(matches!(
            &findings[0],
            Regression::MissingCell { workload, .. } if workload == "grid (chaos:drop=0.2,seed=7)"
        ));
    }

    #[test]
    fn sub_noise_cells_are_exempt_from_the_time_gate() {
        let base = Summary::from_records(&[record("kw:k=2", "grid", 0, 10.0, 0.01)]);
        let slow = Summary::from_records(&[record("kw:k=2", "grid", 0, 10.0, 0.04)]);
        assert!(compare(&base, &slow, &RegressPolicy::default()).is_empty());
    }

    fn trace(threads: usize, scale: u64, barrier_us: u64) -> TraceRecord {
        TraceRecord {
            solver: "kw:k=2".into(),
            workload: "flood10k".into(),
            seed: 42,
            chaos: String::new(),
            summary: kw_trace::TraceSummary {
                threads,
                rounds: 10,
                total_us: 1_000 * scale + barrier_us,
                phase_us: vec![
                    ("barrier".into(), barrier_us),
                    ("compute".into(), 700 * scale),
                    ("deliver".into(), 100 * scale),
                    ("plan".into(), 50 * scale),
                    ("send".into(), 150 * scale),
                ],
                barrier_us,
                imbalance: 1.1,
                pool_wakeups: 0,
                pool_idle: 0,
                structure_hash: 7,
                samples: Vec::new(),
            },
        }
    }

    #[test]
    fn phase_share_drift_gates_within_matching_thread_counts() {
        // Baseline: compute dominates (700 of 1000 phase µs = 70%).
        let base = vec![trace(4, 1, 0)];
        // Same shape, uniformly 3x slower: shares unchanged, no finding.
        let slower = vec![trace(4, 3, 0)];
        assert!(compare_traces(&base, &slower, &RegressPolicy::default()).is_empty());
        // Barrier grows from 0% to ~41% of phase time: flagged, and the
        // compute share collapse is flagged alongside it.
        let barrier_heavy = vec![trace(4, 1, 700)];
        let findings = compare_traces(&base, &barrier_heavy, &RegressPolicy::default());
        assert!(
            findings.iter().any(|r| matches!(
                r,
                Regression::PhaseShare { phase, workload, .. }
                    if phase == "barrier" && workload == "flood10k@4t"
            )),
            "{findings:?}"
        );
        // A 1-thread fresh trace never gates against the 4-thread base.
        let other_threads = vec![trace(1, 1, 700)];
        assert!(compare_traces(&base, &other_threads, &RegressPolicy::default()).is_empty());
        // Missing fresh traces are not findings.
        assert!(compare_traces(&base, &[], &RegressPolicy::default()).is_empty());
        // Re-profiles append: the latest fresh trace is the one gated.
        let appended = vec![trace(4, 1, 700), trace(4, 1, 0)];
        assert!(compare_traces(&base, &appended, &RegressPolicy::default()).is_empty());
    }

    #[test]
    fn scaling_gate_fires_on_lost_speedup() {
        // trace(threads, scale, 0) has total_us = 1000 * scale, so the
        // baseline speedup at 4 threads is 10000 / 5000 = 2.0x.
        let base = vec![trace(1, 10, 0), trace(4, 5, 0)];
        // Fresh speedup 10000 / 7000 = 1.43x < 2.0 * 0.8: flagged.
        let degraded = vec![trace(1, 10, 0), trace(4, 7, 0)];
        let findings = compare_scaling(&base, &degraded, &RegressPolicy::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(matches!(
            &findings[0],
            Regression::Scaling { solver, workload, threads: 4, baseline, fresh }
                if solver == "kw:k=2" && workload == "flood10k"
                    && (*baseline - 2.0).abs() < 1e-9 && *fresh < 1.6
        ));
        // 1.67x is within the default 20% drop budget of 2.0x.
        let ok = vec![trace(1, 10, 0), trace(4, 6, 0)];
        assert!(compare_scaling(&base, &ok, &RegressPolicy::default()).is_empty());
        // Speedups are ratios: a uniformly 3x slower box still passes.
        let slower_box = vec![trace(1, 30, 0), trace(4, 15, 0)];
        assert!(compare_scaling(&base, &slower_box, &RegressPolicy::default()).is_empty());
        // No 1-thread anchor on the fresh side: skipped, not a finding.
        let no_anchor = vec![trace(4, 7, 0)];
        assert!(compare_scaling(&base, &no_anchor, &RegressPolicy::default()).is_empty());
        // Missing fresh traces entirely: skipped, like compare_traces.
        assert!(compare_scaling(&base, &[], &RegressPolicy::default()).is_empty());
        // Re-profiles append; the latest fresh measurement is gated.
        let recovered = vec![trace(1, 10, 0), trace(4, 7, 0), trace(4, 5, 0)];
        assert!(compare_scaling(&base, &recovered, &RegressPolicy::default()).is_empty());
    }

    #[test]
    fn bench_records_gate_on_time_and_presence() {
        let base = vec![
            BenchRecord {
                bench: "engine_flood".into(),
                id: "threads1/1000".into(),
                best_ms: 1.0,
            },
            BenchRecord {
                bench: "engine_ping".into(),
                id: "threads1/1000".into(),
                best_ms: 2.0,
            },
        ];
        let fresh = vec![BenchRecord {
            bench: "engine_flood".into(),
            id: "threads1/1000".into(),
            best_ms: 2.5,
        }];
        let findings = compare_benches(&base, &fresh, &RegressPolicy::default());
        assert_eq!(findings.len(), 2);
        assert!(findings
            .iter()
            .any(|r| matches!(r, Regression::BenchTime { .. })));
        assert!(findings
            .iter()
            .any(|r| matches!(r, Regression::MissingBench { .. })));
        // A re-run that appended a newer, faster measurement passes.
        let appended = vec![
            fresh[0].clone(),
            BenchRecord {
                bench: "engine_flood".into(),
                id: "threads1/1000".into(),
                best_ms: 0.9,
            },
            BenchRecord {
                bench: "engine_ping".into(),
                id: "threads1/1000".into(),
                best_ms: 2.1,
            },
        ];
        assert!(compare_benches(&base, &appended, &RegressPolicy::default()).is_empty());
    }
}
