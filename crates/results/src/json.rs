//! Minimal JSON value model, writer, and parser.
//!
//! The workspace vendors no serde (the build environment is offline), so
//! the run store hand-rolls the small JSON subset it needs: objects with
//! insertion-ordered keys, arrays, strings, booleans, null, and numbers.
//! Unsigned integers keep their own variant so 64-bit seeds round-trip
//! exactly (an `f64` would silently lose precision above 2⁵³).
//!
//! Non-finite floats have no JSON representation; the writer emits
//! `null` for them and readers treat `null` numbers as absent.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (the store's lines stay
    /// byte-stable across write/parse/write cycles).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs (a shorthand for store
    /// line construction).
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number value: exact for unsigned integers, `null` for
    /// non-finite floats.
    pub fn num(x: f64) -> Json {
        if !x.is_finite() {
            Json::Null
        } else if x >= 0.0 && x.fract() == 0.0 && x <= (1u64 << 53) as f64 {
            Json::UInt(x as u64)
        } else {
            Json::Num(x)
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (integers widen; `null` and non-numbers are
    /// `None`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as an exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= (1u64 << 53) as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the store's
                            // writer; lone surrogates decode to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` only ever lands on
                    // char boundaries (ASCII tokens or full chars).
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("bad UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number token is ASCII");
        if !float && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_objects_in_insertion_order() {
        let v = Json::obj([
            ("b", Json::UInt(1)),
            ("a", Json::Str("x\"y".into())),
            ("c", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":"x\"y","c":[true,null]}"#);
    }

    #[test]
    fn parse_render_roundtrip() {
        let text = r#"{"v":1,"kind":"record","seed":18446744073709551615,"size":12.5,"neg":-3.25,"ok":true,"none":null,"tags":["a","b"]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        // Big u64 survives exactly.
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("size").unwrap().as_f64(), Some(12.5));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-3.25));
    }

    #[test]
    fn num_constructor_keeps_integers_exact_and_nulls_nonfinite() {
        assert_eq!(Json::num(4.0), Json::UInt(4));
        assert_eq!(Json::num(4.5), Json::Num(4.5));
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(-1.0), Json::Num(-1.0));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\slash\u{1} π";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.render()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} x",
            "\"unterminated",
            "{\"a\" 1}",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn torn_store_line_fails_to_parse() {
        // The crash-safety story depends on a truncated object never
        // parsing as valid JSON.
        let full = Json::obj([("v", Json::UInt(1)), ("kind", Json::Str("record".into()))]);
        let line = full.render();
        for cut in 1..line.len() {
            assert!(Json::parse(&line[..cut]).is_err(), "prefix {cut} parsed");
        }
    }
}
