//! # kw-results — the streaming results pipeline
//!
//! Experiment output used to be barrier-shaped: a binary ran its whole
//! solver × workload × seed matrix, then pretty-printed a table that
//! died with the process. This crate is the layer that makes results
//! *stream* and *persist* (ROADMAP item (c)):
//!
//! * **Events** — [`ExperimentRunner::run_matrix_streaming`] emits a
//!   [`RunEvent`] per `(solver, workload, seed)` cell over a bounded
//!   MPSC channel; [`pipeline::stream_sweep`] pairs it with a consumer
//!   thread so one caller can run and observe simultaneously.
//! * **Store** — [`store::RunStore`] is an append-only JSONL file with a
//!   versioned schema ([`store::SCHEMA_VERSION`]) holding sweep
//!   manifests (solver specs, workloads, seeds, fault plan, git
//!   describe), per-cell run records, and criterion bench measurements.
//!   Appends are crash-safe (one flushed write per line; torn tails are
//!   repaired on open) and stores replay into an [`ExperimentCache`], so
//!   a killed sweep resumes by solving only its missing cells.
//! * **Summaries** — [`summary::Summary`] rolls records up per cell and
//!   per solver with mean/p50/p95 (quality stats exclude non-dominating
//!   runs), rendering to markdown or CSV.
//! * **Regression gating** — [`regress::compare`] diffs a fresh summary
//!   against a stored baseline and flags quality growth, new failures,
//!   and ≥20% time regressions; `regress::compare_benches` does the same
//!   for bench lines, and `regress::compare_traces` gates the *shape* of
//!   profiles (per-phase share drift, matched by thread count). The
//!   `regress` binary exits non-zero on findings, and `store_smoke` is
//!   the CI end-to-end check (sweep → validate → resume → 100% cache
//!   hits).
//! * **Traces** — profiled solves ([`kw_trace`] spans through
//!   `SolveContext::trace`) persist as `trace` store lines
//!   ([`store::TraceRecord`]) and roll up per solver × workload ×
//!   threads via [`summary::TraceRollup`] (phase shares, barrier cost,
//!   worker imbalance).
//!
//! [`ExperimentRunner::run_matrix_streaming`]:
//!     kw_core::solver::ExperimentRunner::run_matrix_streaming
//! [`ExperimentCache`]: kw_core::solver::ExperimentCache
//! [`RunEvent`]: kw_core::solver::RunEvent

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod pipeline;
pub mod regress;
pub mod render;
pub mod store;
pub mod summary;

pub use pipeline::{stream_sweep, PipelineError, SweepOutcome, SweepSession};
pub use regress::{compare, compare_benches, compare_traces, RegressPolicy, Regression};
pub use render::Table;
pub use store::{
    load_path, BenchRecord, RunManifest, RunStore, StoreError, TraceRecord, SCHEMA_VERSION,
};
pub use summary::{nearest_rank, CellRollup, Percentiles, SolverRollup, Summary, TraceRollup};

// The event types are defined next to the runner that emits them; this
// crate is their natural home from a consumer's point of view.
pub use kw_core::solver::{RunEvent, RunRecord};
