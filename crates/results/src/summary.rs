//! Rollups of run records: per-cell and per-solver statistics with
//! mean/p50/p95, rendered to markdown or CSV.
//!
//! A [`Summary`] is built from [`RunRecord`]s — live ones collected from
//! a streaming sweep or persisted ones loaded from a [`RunStore`] — and
//! aggregates each `(solver, workload)` cell over its seeds, plus each
//! solver over all its cells. Quality statistics (size, rounds,
//! messages, bits, ratio-vs-Lemma-1) exclude non-dominating runs, which
//! are counted as `failures` instead — the same convention
//! [`CellSummary`] uses; wall-time statistics include every run (cost is
//! cost, dominated or not).
//!
//! [`RunStore`]: crate::store::RunStore
//! [`CellSummary`]: kw_core::solver::CellSummary

use std::fmt::Write as _;

use kw_core::solver::RunRecord;

use crate::render::Table;

/// Nearest-rank percentile rank, computed exactly in integers: the P-th
/// percentile of `n` samples is the `ceil(P·n/100)`-th order statistic,
/// returned here as a **1-based rank** clamped to at least 1 (so for
/// n = 1 every percentile is the sole sample). Returns 0 when `n` is 0 —
/// no samples, no rank. The earlier float formulation
/// (`(q * n as f64).ceil()`) was correct for small n but hinged on
/// `0.95 * n` rounding to the right side of an integer; integer
/// arithmetic removes that hazard for every n.
///
/// This is the *single* percentile definition of the workspace: both
/// [`Percentiles::from_samples`] and the serving daemon's latency
/// histogram (`kw_serve`) rank through this function, so a p99 in a
/// summary table and a p99 on `/metrics` mean exactly the same thing.
pub fn nearest_rank(percent: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    (percent * n).div_ceil(100).max(1)
}

/// Order statistics of one sample set (nearest-rank percentiles).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Percentiles {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median (0 when empty).
    pub p50: f64,
    /// 95th percentile (0 when empty).
    pub p95: f64,
    /// 99th percentile (0 when empty).
    pub p99: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl Percentiles {
    /// Summarizes `samples`.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are comparable"));
        let rank = |percent: usize| -> f64 { sorted[nearest_rank(percent, sorted.len()) - 1] };
        Percentiles {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }
}

/// One `(solver, workload)` cell aggregated over seeds.
#[derive(Clone, Debug)]
pub struct CellRollup {
    /// Canonical solver spec.
    pub solver: String,
    /// Workload label.
    pub workload: String,
    /// Canonical chaos spec the cell ran under (`""` = reliable). Part
    /// of the cell key: the same `(solver, workload)` under different
    /// chaos plans rolls up as separate cells.
    pub chaos: String,
    /// Node count of the workload graph.
    pub n: usize,
    /// Maximum degree `Δ` of the workload graph.
    pub max_degree: usize,
    /// Seeds aggregated.
    pub runs: usize,
    /// Runs whose output failed to dominate.
    pub failures: usize,
    /// Dominating-set sizes.
    pub size: Percentiles,
    /// Synchronous rounds.
    pub rounds: Percentiles,
    /// Total messages.
    pub messages: Percentiles,
    /// Total payload bits.
    pub bits: Percentiles,
    /// Set size over the Lemma-1 lower bound.
    pub ratio_vs_lemma1: Percentiles,
    /// Wall-clock solve time, ms (includes failed runs).
    pub wall_ms: Percentiles,
}

/// One solver aggregated over every workload and seed it ran.
#[derive(Clone, Debug)]
pub struct SolverRollup {
    /// Canonical solver spec.
    pub solver: String,
    /// Total runs across workloads.
    pub runs: usize,
    /// Total non-dominating runs.
    pub failures: usize,
    /// Dominating-set sizes, pooled across workloads.
    pub size: Percentiles,
    /// Ratio-vs-Lemma-1, pooled across workloads (the comparable
    /// quality number between solvers).
    pub ratio_vs_lemma1: Percentiles,
    /// Rounds, pooled across workloads.
    pub rounds: Percentiles,
    /// Wall-clock time, ms, pooled across workloads.
    pub wall_ms: Percentiles,
}

/// Per-cell and per-solver rollups of a set of run records.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Cells, sorted by `(workload, chaos, solver)` (the classic table
    /// order, with chaos variants of a workload grouped together).
    pub cells: Vec<CellRollup>,
    /// Solvers, sorted by spec.
    pub solvers: Vec<SolverRollup>,
}

impl Summary {
    /// Aggregates `records`. Order-insensitive: any permutation of the
    /// same records yields the identical summary.
    pub fn from_records(records: &[RunRecord]) -> Self {
        #[derive(Default)]
        struct Acc {
            n: usize,
            max_degree: usize,
            runs: usize,
            failures: usize,
            size: Vec<f64>,
            rounds: Vec<f64>,
            messages: Vec<f64>,
            bits: Vec<f64>,
            ratio: Vec<f64>,
            wall: Vec<f64>,
        }
        impl Acc {
            fn push(&mut self, r: &RunRecord) {
                self.n = r.n;
                self.max_degree = r.max_degree;
                self.runs += 1;
                self.wall.push(r.outcome.wall_ms);
                if !r.outcome.dominates {
                    self.failures += 1;
                    return;
                }
                self.size.push(r.outcome.size);
                self.rounds.push(r.outcome.rounds);
                self.messages.push(r.outcome.messages);
                self.bits.push(r.outcome.bits);
                self.ratio.push(r.outcome.ratio_vs_lemma1);
            }
        }
        let mut cells: std::collections::BTreeMap<(String, String, String), Acc> =
            Default::default();
        let mut solvers: std::collections::BTreeMap<String, Acc> = Default::default();
        // Seeds sort runs deterministically inside each accumulator, so
        // percentile input order never depends on worker scheduling.
        let mut sorted: Vec<&RunRecord> = records.iter().collect();
        sorted.sort_by(|a, b| {
            (&a.solver, &a.workload, &a.chaos, a.seed).cmp(&(
                &b.solver,
                &b.workload,
                &b.chaos,
                b.seed,
            ))
        });
        for r in sorted {
            cells
                .entry((r.workload.clone(), r.chaos.clone(), r.solver.clone()))
                .or_default()
                .push(r);
            solvers.entry(r.solver.clone()).or_default().push(r);
        }
        Summary {
            cells: cells
                .into_iter()
                .map(|((workload, chaos, solver), acc)| CellRollup {
                    solver,
                    workload,
                    chaos,
                    n: acc.n,
                    max_degree: acc.max_degree,
                    runs: acc.runs,
                    failures: acc.failures,
                    size: Percentiles::from_samples(&acc.size),
                    rounds: Percentiles::from_samples(&acc.rounds),
                    messages: Percentiles::from_samples(&acc.messages),
                    bits: Percentiles::from_samples(&acc.bits),
                    ratio_vs_lemma1: Percentiles::from_samples(&acc.ratio),
                    wall_ms: Percentiles::from_samples(&acc.wall),
                })
                .collect(),
            solvers: solvers
                .into_iter()
                .map(|(solver, acc)| SolverRollup {
                    solver,
                    runs: acc.runs,
                    failures: acc.failures,
                    size: Percentiles::from_samples(&acc.size),
                    ratio_vs_lemma1: Percentiles::from_samples(&acc.ratio),
                    rounds: Percentiles::from_samples(&acc.rounds),
                    wall_ms: Percentiles::from_samples(&acc.wall),
                })
                .collect(),
        }
    }

    /// Looks one cell up by solver and workload (first match across
    /// chaos variants; summaries of reliable sweeps have exactly one).
    pub fn cell(&self, solver: &str, workload: &str) -> Option<&CellRollup> {
        self.cells
            .iter()
            .find(|c| c.solver == solver && c.workload == workload)
    }

    /// Looks one cell up under a specific canonical chaos spec (`""` =
    /// reliable).
    pub fn cell_under(&self, solver: &str, workload: &str, chaos: &str) -> Option<&CellRollup> {
        self.cells
            .iter()
            .find(|c| c.solver == solver && c.workload == workload && c.chaos == chaos)
    }

    /// Renders the per-cell table as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "| workload | n | Δ | solver | chaos | runs | fail | E\\|DS\\| | p50 | p95 | p99 | ratio | rounds | msgs(p50) | wall ms |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
        for c in &self.cells {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {:.1} | {:.0} | {:.0} | {:.0} | {:.2} | {:.0} | {:.0} | {:.2} |",
                c.workload,
                c.n,
                c.max_degree,
                c.solver,
                if c.chaos.is_empty() { "-" } else { &c.chaos },
                c.runs,
                c.failures,
                c.size.mean,
                c.size.p50,
                c.size.p95,
                c.size.p99,
                c.ratio_vs_lemma1.mean,
                c.rounds.p50,
                c.messages.p50,
                c.wall_ms.mean,
            );
        }
        out
    }

    /// Renders the per-cell statistics as CSV (full precision; one row
    /// per cell).
    pub fn to_csv(&self) -> String {
        let mut t = Table::new([
            "workload",
            "n",
            "max_degree",
            "solver",
            "chaos",
            "runs",
            "failures",
            "size_mean",
            "size_p50",
            "size_p95",
            "size_p99",
            "ratio_mean",
            "rounds_p50",
            "messages_p50",
            "bits_p50",
            "wall_ms_mean",
            "wall_ms_p99",
        ]);
        for c in &self.cells {
            t.row([
                c.workload.clone(),
                c.n.to_string(),
                c.max_degree.to_string(),
                c.solver.clone(),
                c.chaos.clone(),
                c.runs.to_string(),
                c.failures.to_string(),
                c.size.mean.to_string(),
                c.size.p50.to_string(),
                c.size.p95.to_string(),
                c.size.p99.to_string(),
                c.ratio_vs_lemma1.mean.to_string(),
                c.rounds.p50.to_string(),
                c.messages.p50.to_string(),
                c.bits.p50.to_string(),
                c.wall_ms.mean.to_string(),
                c.wall_ms.p99.to_string(),
            ]);
        }
        t.to_csv()
    }
}

/// Where-does-time-go rollup over a store's trace lines: one row per
/// `(solver, workload, chaos, threads)` key, keeping the latest trace
/// for each (re-profiles append, the newest is the current state).
///
/// The row reports each engine phase's share of total phase time, the
/// fork/join barrier share, and the worker imbalance ratio — the three
/// numbers that answer "is this workload compute-bound, delivery-bound,
/// or coordination-bound at this thread count?".
#[derive(Clone, Debug, Default)]
pub struct TraceRollup {
    /// One row per key, in first-seen order.
    pub rows: Vec<TraceRow>,
}

/// One [`TraceRollup`] row.
#[derive(Clone, Debug)]
pub struct TraceRow {
    /// Canonical solver spec.
    pub solver: String,
    /// Workload label.
    pub workload: String,
    /// Canonical chaos spec (`""` = reliable).
    pub chaos: String,
    /// Engine worker count of the profile.
    pub threads: usize,
    /// Round count of the profiled solve.
    pub rounds: u64,
    /// Wall time of the whole trace, milliseconds.
    pub total_ms: f64,
    /// `(phase, share of phase time)` for each of [`kw_trace::PHASES`].
    pub shares: Vec<(String, f64)>,
    /// Max worker busy time over mean worker busy time.
    pub imbalance: f64,
}

impl TraceRollup {
    /// Rolls trace records up, keeping the latest per key.
    pub fn from_traces(traces: &[crate::store::TraceRecord]) -> TraceRollup {
        let mut rows: Vec<TraceRow> = Vec::new();
        for t in traces {
            let row = TraceRow {
                solver: t.solver.clone(),
                workload: t.workload.clone(),
                chaos: t.chaos.clone(),
                threads: t.summary.threads,
                rounds: t.summary.rounds,
                total_ms: t.summary.total_us as f64 / 1e3,
                shares: kw_trace::PHASES
                    .iter()
                    .map(|&p| (p.to_string(), t.summary.phase_share(p)))
                    .collect(),
                imbalance: t.summary.imbalance,
            };
            let key = |r: &TraceRow| {
                (
                    r.solver.clone(),
                    r.workload.clone(),
                    r.chaos.clone(),
                    r.threads,
                )
            };
            match rows.iter_mut().find(|r| key(r) == key(&row)) {
                Some(existing) => *existing = row,
                None => rows.push(row),
            }
        }
        TraceRollup { rows }
    }

    /// Renders the rollup as a GitHub-flavored markdown table (phase
    /// shares as percentages of phase time).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "| solver | workload | chaos | threads | rounds | total ms | plan | send | deliver | compute | barrier | imbalance |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|\n");
        for r in &self.rows {
            let share = |phase: &str| {
                r.shares
                    .iter()
                    .find(|(p, _)| p == phase)
                    .map_or(0.0, |&(_, s)| s)
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.2} | {:.0}% | {:.0}% | {:.0}% | {:.0}% | {:.0}% | {:.2} |",
                r.solver,
                r.workload,
                if r.chaos.is_empty() { "-" } else { &r.chaos },
                r.threads,
                r.rounds,
                r.total_ms,
                100.0 * share("plan"),
                100.0 * share("send"),
                100.0 * share("deliver"),
                100.0 * share("compute"),
                100.0 * share("barrier"),
                r.imbalance,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kw_core::solver::RunOutcome;

    fn record(solver: &str, workload: &str, seed: u64, size: f64, dominates: bool) -> RunRecord {
        RunRecord {
            solver: solver.into(),
            workload: workload.into(),
            n: 100,
            max_degree: 9,
            seed,
            chaos: String::new(),
            threads: 1,
            outcome: RunOutcome {
                dominates,
                size,
                rounds: 18.0,
                messages: 100.0 * size,
                bits: 1000.0 * size,
                ratio_vs_lemma1: size / 10.0,
                wall_ms: size / 2.0,
            },
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let p = Percentiles::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p.count, 4);
        assert_eq!(p.mean, 2.5);
        assert_eq!(p.p50, 2.0);
        assert_eq!(p.p95, 4.0);
        assert_eq!(p.p99, 4.0);
        assert_eq!((p.min, p.max), (1.0, 4.0));
        assert_eq!(Percentiles::from_samples(&[]), Percentiles::default());
    }

    /// The shared rank function itself, at the sizes the satellite pins
    /// (n = 1/2/3/20) plus the first n where p99 separates from max.
    #[test]
    fn nearest_rank_boundary_cases() {
        assert_eq!(nearest_rank(50, 0), 0, "no samples, no rank");
        for percent in [50, 95, 99] {
            assert_eq!(nearest_rank(percent, 1), 1);
        }
        // n = 2: ceil(1.0) = 1, ceil(1.9) = 2, ceil(1.98) = 2.
        assert_eq!(
            (
                nearest_rank(50, 2),
                nearest_rank(95, 2),
                nearest_rank(99, 2)
            ),
            (1, 2, 2)
        );
        // n = 3: ceil(1.5) = 2, ceil(2.85) = 3, ceil(2.97) = 3.
        assert_eq!(
            (
                nearest_rank(50, 3),
                nearest_rank(95, 3),
                nearest_rank(99, 3)
            ),
            (2, 3, 3)
        );
        // n = 20: p50 and p95 are exact integer ranks; p99 still clamps
        // to the max (ceil(19.8) = 20).
        assert_eq!(
            (
                nearest_rank(50, 20),
                nearest_rank(95, 20),
                nearest_rank(99, 20)
            ),
            (10, 19, 20)
        );
        // n = 101 is the first size where p99 drops below the max.
        assert_eq!(nearest_rank(99, 101), 100);
        assert_eq!(nearest_rank(100, 101), 101);
    }

    /// Nearest-rank boundary behavior on tiny and exact-rank cells:
    /// singletons report the sole sample for every statistic, 2- and
    /// 3-sample cells take the lower median and the max for p95/p99, and
    /// 20 samples put p95 exactly at the 19th order statistic
    /// (`ceil(95·20/100) = 19`, an exact integer rank the old float path
    /// could only hit by rounding luck).
    #[test]
    fn percentiles_small_and_exact_rank_cells() {
        // n = 1: p50 = p95 = p99 = min = max = the sample.
        let one = Percentiles::from_samples(&[7.0]);
        assert_eq!((one.p50, one.p95, one.p99), (7.0, 7.0, 7.0));
        assert_eq!((one.min, one.max), (7.0, 7.0));
        assert_eq!(one.mean, 7.0);
        // n = 2: rank(50) = ceil(1.0) = 1st, rank(95) = ceil(1.9) = 2nd.
        let two = Percentiles::from_samples(&[10.0, 2.0]);
        assert_eq!((two.p50, two.p95, two.p99), (2.0, 10.0, 10.0));
        // n = 3: rank(50) = ceil(1.5) = 2nd, rank(95) = ceil(2.85) = 3rd.
        let three = Percentiles::from_samples(&[9.0, 1.0, 5.0]);
        assert_eq!((three.p50, three.p95, three.p99), (5.0, 9.0, 9.0));
        // n = 20: p50/p95 ranks are exact integers (10 and 19); p99
        // clamps to the 20th.
        let many: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let p = Percentiles::from_samples(&many);
        assert_eq!(p.p50, 10.0);
        assert_eq!(p.p95, 19.0);
        assert_eq!(p.p99, 20.0);
        // n = 200: p99 sits strictly below the max (198th of 200).
        let wide: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        let p = Percentiles::from_samples(&wide);
        assert_eq!(p.p99, 198.0);
        assert_eq!(p.max, 200.0);
    }

    #[test]
    fn rollups_group_and_exclude_failures_from_quality() {
        let records = vec![
            record("kw:k=2", "grid", 0, 10.0, true),
            record("kw:k=2", "grid", 1, 12.0, true),
            record("kw:k=2", "grid", 2, 99.0, false), // failure
            record("kw:k=2", "udg", 0, 20.0, true),
            record("greedy", "grid", 0, 8.0, true),
        ];
        let s = Summary::from_records(&records);
        assert_eq!(s.cells.len(), 3);
        let cell = s.cell("kw:k=2", "grid").unwrap();
        assert_eq!((cell.runs, cell.failures), (3, 1));
        assert_eq!(cell.size.count, 2, "failed run excluded from quality");
        assert_eq!(cell.size.mean, 11.0);
        assert_eq!(cell.wall_ms.count, 3, "failed run still costs wall time");
        assert_eq!((cell.n, cell.max_degree), (100, 9));
        // Solver rollup pools workloads.
        let kw = s.solvers.iter().find(|r| r.solver == "kw:k=2").unwrap();
        assert_eq!((kw.runs, kw.failures), (4, 1));
        assert_eq!(kw.size.count, 3);
        // Cells sort workload-major.
        let order: Vec<(&str, &str)> = s
            .cells
            .iter()
            .map(|c| (c.workload.as_str(), c.solver.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![("grid", "greedy"), ("grid", "kw:k=2"), ("udg", "kw:k=2")]
        );
    }

    #[test]
    fn summary_is_order_insensitive() {
        let mut records = vec![
            record("kw:k=2", "grid", 0, 10.0, true),
            record("kw:k=2", "grid", 1, 12.0, true),
            record("greedy", "grid", 0, 8.0, true),
            record("greedy", "udg", 3, 9.0, true),
        ];
        let a = Summary::from_records(&records);
        records.reverse();
        let b = Summary::from_records(&records);
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_markdown(), b.to_markdown());
    }

    #[test]
    fn renders_markdown_and_csv() {
        let records = vec![
            record("kw:k=2", "grid", 0, 10.0, true),
            record("kw:k=2", "grid", 1, 12.0, true),
        ];
        let s = Summary::from_records(&records);
        let md = s.to_markdown();
        assert!(md.starts_with("| workload |"));
        assert!(md.lines().next().unwrap().contains("| p99 |"));
        // p50/p95/p99 of {10, 12}: ranks 1/2/2 → 10, 12, 12.
        assert!(md.contains("| grid | 100 | 9 | kw:k=2 | - | 2 | 0 | 11.0 | 10 | 12 | 12 |"));
        let csv = s.to_csv();
        assert!(csv.starts_with("workload,n,max_degree,solver,chaos,"));
        assert!(csv.lines().next().unwrap().contains("size_p99"));
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("grid,100,9,kw:k=2,,2,0,11,10,12,12,"));
    }

    /// The same `(solver, workload)` under different chaos plans must
    /// roll up as separate cells — collapsing them would average a
    /// degraded run into the clean baseline.
    #[test]
    fn chaos_variants_are_distinct_cells() {
        let mut clean = record("kw:k=2", "grid", 0, 10.0, true);
        clean.chaos = String::new();
        let mut noisy = record("kw:k=2", "grid", 0, 14.0, true);
        noisy.chaos = "drop=0.2,seed=7".into();
        let mut noisy2 = record("kw:k=2", "grid", 1, 16.0, false);
        noisy2.chaos = "drop=0.2,seed=7".into();
        let s = Summary::from_records(&[clean, noisy, noisy2]);
        assert_eq!(s.cells.len(), 2);
        let base = s.cell_under("kw:k=2", "grid", "").unwrap();
        assert_eq!((base.runs, base.failures), (1, 0));
        assert_eq!(base.size.mean, 10.0);
        let chaotic = s.cell_under("kw:k=2", "grid", "drop=0.2,seed=7").unwrap();
        assert_eq!((chaotic.runs, chaotic.failures), (2, 1));
        assert_eq!(chaotic.size.mean, 14.0, "failed run excluded");
        // The chaos spec shows up in both rendered tables.
        assert!(s.to_markdown().contains("| drop=0.2,seed=7 |"));
        assert!(s.to_csv().contains(",drop=0.2,seed=7,"));
        // The chaos-blind lookup still finds the first variant.
        assert!(s.cell("kw:k=2", "grid").is_some());
    }

    #[test]
    fn trace_rollup_keeps_latest_per_key_and_renders_shares() {
        let trace = |threads: usize, compute_us: u64| crate::store::TraceRecord {
            solver: "kw:k=2".into(),
            workload: "flood10k".into(),
            seed: 42,
            chaos: String::new(),
            summary: kw_trace::TraceSummary {
                threads,
                rounds: 10,
                total_us: 2_000,
                phase_us: vec![
                    ("barrier".into(), 100),
                    ("compute".into(), compute_us),
                    ("deliver".into(), 200),
                    ("plan".into(), 50),
                    ("send".into(), 150),
                ],
                barrier_us: 100,
                imbalance: 1.3,
                pool_wakeups: 0,
                pool_idle: 0,
                structure_hash: 1,
                samples: Vec::new(),
            },
        };
        // Two profiles of the same key: the later one wins. A different
        // thread count is its own row.
        let rollup = TraceRollup::from_traces(&[trace(4, 900), trace(4, 500), trace(1, 500)]);
        assert_eq!(rollup.rows.len(), 2);
        let row = &rollup.rows[0];
        assert_eq!((row.threads, row.rounds), (4, 10));
        // compute share = 500 / (50+150+200+500+100) = 50%.
        let compute = row
            .shares
            .iter()
            .find(|(p, _)| p == "compute")
            .map(|&(_, s)| s)
            .unwrap();
        assert!((compute - 0.5).abs() < 1e-9);
        let md = rollup.to_markdown();
        assert!(md.contains("| kw:k=2 | flood10k | - | 4 |"), "{md}");
        assert!(md.contains("50%"), "{md}");
        assert!(md.contains("| 1.30 |"), "{md}");
    }
}
