//! End-to-end acceptance of the streaming results pipeline: a
//! killed-then-resumed sweep re-executes only its missing cells (with
//! hit/miss counts reported via `RunEvent`s), and the regression gate
//! fails on an injected 2× slowdown against a stored baseline.

use std::path::PathBuf;

use kw_core::solver::{ExperimentRunner, RunEvent, SolverRegistry};
use kw_graph::generators;
use kw_results::pipeline::{PipelineError, SweepSession};
use kw_results::regress::{compare, RegressPolicy, Regression};
use kw_results::store::RunStore;
use kw_results::summary::Summary;
use kw_results::RunRecord;

fn temp_store(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "kw_pipeline_test_{}_{tag}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn workloads() -> Vec<(String, kw_graph::CsrGraph)> {
    vec![
        ("grid4".to_string(), generators::grid(4, 4)),
        ("petersen".to_string(), generators::petersen()),
    ]
}

#[test]
fn killed_then_resumed_sweep_reexecutes_only_missing_cells() {
    let path = temp_store("resume");
    let registry = SolverRegistry::with_core_solvers();
    let solvers = registry.build_all(["kw:k=2", "composite:k=2"]).unwrap();
    let runner = ExperimentRunner::new().workers(2);
    let total = 2 * 2 * 3; // solvers × workloads × seeds

    // Full sweep into the store.
    let mut session = SweepSession::open(&path).unwrap();
    let full = session
        .run(&runner, &solvers, &workloads(), 0..3, |_| {})
        .unwrap();
    assert_eq!((full.solved, full.cached), (total as u64, 0));
    // Release the writer lock before the "killed" process resumes.
    drop(session);

    // "Kill" the sweep: keep the manifest and the first 5 records, plus
    // a torn half-line exactly as a crash mid-append would leave it.
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(1 + 5).collect();
    let mut truncated = keep.join("\n");
    truncated.push('\n');
    truncated.push_str("{\"v\":1,\"kind\":\"record\",\"solver\":\"kw:k=2\",\"work");
    std::fs::write(&path, &truncated).unwrap();

    // Resume: only the 7 missing cells may solve.
    let mut resumed = SweepSession::open(&path).unwrap();
    assert_eq!(resumed.replayed(), 5, "five surviving records replay");
    let (mut cached_events, mut finished_events) = (0u64, 0u64);
    let out = resumed
        .run(&runner, &solvers, &workloads(), 0..3, |ev| match ev {
            RunEvent::CellCached { .. } => cached_events += 1,
            RunEvent::CellFinished { .. } => finished_events += 1,
            _ => {}
        })
        .unwrap();
    // Hit/miss counts arrive via the events (and the outcome totals).
    assert_eq!((cached_events, finished_events), (5, 7));
    assert_eq!((out.cached, out.solved, out.failed), (5, 7, 0));
    assert_eq!(resumed.cache().hits(), 5);
    assert_eq!(resumed.cache().misses(), 7);

    // The resumed sweep's results are bit-identical to the uninterrupted
    // run's — replayed cells carry the original outcomes.
    for (a, b) in full.cells.iter().zip(&out.cells) {
        assert_eq!(
            (a.solver.as_str(), a.workload.as_str()),
            (b.solver.as_str(), b.workload.as_str())
        );
        assert_eq!(a.size, b.size);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.ratio_vs_lemma1, b.ratio_vs_lemma1);
    }

    // The store is whole again: 12 records, no torn tail, and a third
    // session replays all of them (nothing left to solve).
    drop(resumed);
    let contents = RunStore::open(&path).unwrap().load().unwrap();
    assert_eq!(contents.records.len(), total);
    assert_eq!(contents.manifests.len(), 2, "one manifest per launch");
    assert!(!contents.truncated_tail, "open repaired the torn tail");
    let mut third = SweepSession::open(&path).unwrap();
    assert_eq!(third.replayed(), total);
    let replay = third
        .run(&runner, &solvers, &workloads(), 0..3, |_| {})
        .unwrap();
    assert_eq!((replay.solved, replay.cached), (0, total as u64));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn regress_gate_fails_on_injected_2x_slowdown_against_stored_baseline() {
    let baseline_path = temp_store("baseline");
    let registry = SolverRegistry::with_core_solvers();
    let solvers = registry.build_all(["kw:k=2"]).unwrap();
    let runner = ExperimentRunner::new();

    // Store a baseline the way any sweep would.
    let mut session = SweepSession::open(&baseline_path).unwrap();
    let out = session
        .run(&runner, &solvers, &workloads(), 0..4, |_| {})
        .unwrap();
    drop(session);
    let baseline = RunStore::open(&baseline_path).unwrap().load().unwrap();
    assert_eq!(baseline.records.len(), out.records.len());

    // A fresh run with identical quality and timing passes the gate.
    let base_summary = Summary::from_records(&baseline.records);
    assert!(compare(&base_summary, &base_summary, &RegressPolicy::default()).is_empty());

    // Inject a 2× slowdown into otherwise identical records: the gate
    // must fail (exit non-zero in the `regress` binary, which forwards
    // `compare`'s findings).
    let slowed: Vec<RunRecord> = baseline
        .records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.outcome.wall_ms *= 2.0;
            // Keep every cell above the noise floor so the gate judges
            // the ratio, not the absolute magnitude.
            r.outcome.wall_ms += 1.0;
            r
        })
        .collect();
    let base_above_noise: Vec<RunRecord> = baseline
        .records
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.outcome.wall_ms += 0.5;
            r
        })
        .collect();
    let findings = compare(
        &Summary::from_records(&base_above_noise),
        &Summary::from_records(&slowed),
        &RegressPolicy::default(),
    );
    assert!(
        !findings.is_empty(),
        "2x slowdown must trip the >=20% time gate"
    );
    assert!(findings
        .iter()
        .all(|f| matches!(f, Regression::Time { .. })));
    std::fs::remove_file(&baseline_path).unwrap();
}

#[test]
fn stale_store_is_rejected_not_silently_replayed() {
    let path = temp_store("stale");
    let registry = SolverRegistry::with_core_solvers();
    let solvers = registry.build_all(["kw:k=2"]).unwrap();
    let runner = ExperimentRunner::new();
    // Record runs for "grid4" on the 4×4 grid.
    let mut session = SweepSession::open(&path).unwrap();
    session
        .run(&runner, &solvers, &workloads(), 0..2, |_| {})
        .unwrap();
    drop(session);
    // A later launch reuses the label for a *different* graph (the shape
    // a changed generator would produce): replaying must refuse loudly.
    let mut resumed = SweepSession::open(&path).unwrap();
    let changed = vec![("grid4".to_string(), generators::grid(5, 5))];
    match resumed.run(&runner, &solvers, &changed, 0..2, |_| {}) {
        Err(PipelineError::StaleWorkload {
            workload,
            stored,
            live,
        }) => {
            assert_eq!(workload, "grid4");
            assert_eq!(stored, (16, 4));
            assert_eq!(live, (25, 4));
        }
        other => panic!("expected StaleWorkload, got {other:?}"),
    }
    // The unchanged graph still resumes fine.
    let out = resumed
        .run(&runner, &solvers, &workloads(), 0..2, |_| {})
        .unwrap();
    assert_eq!(out.solved, 0);
    assert!(out.store_error.is_none());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn summary_of_a_loaded_store_renders_and_rolls_up() {
    let path = temp_store("summary");
    let registry = SolverRegistry::with_core_solvers();
    let solvers = registry.build_all(["kw:k=2", "kw:k=3"]).unwrap();
    let mut session = SweepSession::open(&path).unwrap();
    session
        .run(
            &ExperimentRunner::new(),
            &solvers,
            &workloads(),
            0..5,
            |_| {},
        )
        .unwrap();
    drop(session);
    let contents = RunStore::open(&path).unwrap().load().unwrap();
    let summary = Summary::from_records(&contents.records);
    assert_eq!(summary.cells.len(), 4);
    assert_eq!(summary.solvers.len(), 2);
    for cell in &summary.cells {
        assert_eq!(cell.runs, 5);
        assert_eq!(cell.failures, 0);
        assert_eq!(cell.size.count, 5);
        assert!(cell.size.p50 >= cell.size.min && cell.size.p95 <= cell.size.max);
        assert!(cell.ratio_vs_lemma1.mean >= 1.0 - 1e-9);
    }
    let md = summary.to_markdown();
    assert!(md.contains("| grid4 | 16 | 4 | kw:k=2 |"));
    assert_eq!(md.lines().count(), 2 + 4);
    let csv = summary.to_csv();
    assert_eq!(csv.lines().count(), 1 + 4);
    std::fs::remove_file(&path).unwrap();
}
