//! End-to-end integration: the full pipeline against exact optima, LP
//! optima, and baselines, across graph families.

use kw_domset::prelude::*;
use kw_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn families() -> Vec<(&'static str, kw_graph::CsrGraph)> {
    let mut rng = SmallRng::seed_from_u64(1000);
    vec![
        ("gnp", generators::gnp(60, 0.1, &mut rng)),
        ("udg", generators::unit_disk(60, 0.22, &mut rng)),
        ("ba", generators::barabasi_albert(60, 2, &mut rng)),
        ("grid", generators::grid(8, 8)),
        ("tree", generators::balanced_tree(3, 3)),
        ("cliques", generators::star_of_cliques(4, 7)),
        ("star", generators::star(50)),
        ("cycle", generators::cycle(48)),
    ]
}

#[test]
fn pipeline_dominates_every_family_and_k() {
    let registry = kw_domset::default_registry();
    for (name, g) in families() {
        for k in 1..=4u32 {
            for base in ["alg2", "kw"] {
                let spec = format!("{base}:k={k}");
                let report = registry
                    .build(&spec)
                    .unwrap()
                    .solve(&g, &SolveContext::seeded(11))
                    .unwrap();
                let cert = report.certificate.as_ref().unwrap();
                assert!(cert.dominates, "{name} {spec} not dominating");
                assert_eq!(
                    cert.fractional_feasible,
                    Some(true),
                    "{name} {spec} infeasible fractional"
                );
            }
        }
    }
}

#[test]
fn fractional_stage_beats_its_paper_bound_against_exact_lp() {
    for (name, g) in families() {
        let lp = kw_lp::domset::solve_lp_mds(&g).unwrap();
        for k in 1..=4u32 {
            let a2 = kw_core::alg2::reference_alg2(&g, k).unwrap().objective();
            let a3 = kw_core::alg3::reference_alg3(&g, k).unwrap().objective();
            let b2 = kw_core::math::alg2_lp_bound(k, g.max_degree());
            let b3 = kw_core::math::alg3_lp_bound(k, g.max_degree());
            assert!(
                a2 <= b2 * lp.value + 1e-6,
                "{name}: alg2 k={k}: {a2} > {b2}·{}",
                lp.value
            );
            assert!(
                a3 <= b3 * lp.value + 1e-6,
                "{name}: alg3 k={k}: {a3} > {b3}·{}",
                lp.value
            );
        }
    }
}

#[test]
fn sandwich_inequalities_hold() {
    // lemma1 ≤ LP_OPT ≤ IP_OPT ≤ greedy ≤ n, on exactly solvable sizes.
    for (name, g) in families() {
        if g.len() > 80 {
            continue;
        }
        let lemma1 = kw_lp::bounds::lemma1_bound(&g);
        let lp = kw_lp::domset::solve_lp_mds(&g).unwrap().value;
        let ip = kw_lp::exact::solve_mds(&g, &kw_lp::exact::ExactOptions::default())
            .unwrap()
            .len() as f64;
        let greedy = kw_domset::default_registry()
            .build("greedy")
            .unwrap()
            .solve(&g, &SolveContext::default())
            .unwrap()
            .size() as f64;
        assert!(lemma1 <= lp + 1e-6, "{name}: lemma1 {lemma1} > lp {lp}");
        assert!(lp <= ip + 1e-6, "{name}: lp {lp} > ip {ip}");
        assert!(ip <= greedy + 1e-6, "{name}: ip {ip} > greedy {greedy}");
        assert!(greedy <= g.len() as f64);
    }
}

#[test]
fn every_algorithm_output_is_dominating() {
    let mut rng = SmallRng::seed_from_u64(2000);
    let g = generators::gnp(64, 0.1, &mut rng);
    let registry = kw_domset::default_registry();
    let ctx = SolveContext::seeded(3);
    let mut outputs: Vec<(String, DominatingSet)> = registry
        .build_all([
            "greedy",
            "luby-mis",
            "jrs",
            "trivial",
            "kw:k=2",
            "composite:k=2",
        ])
        .unwrap()
        .iter()
        .map(|s| (s.spec(), s.solve(&g, &ctx).unwrap().dominating_set))
        .collect();
    outputs.push((
        "exact".to_string(),
        kw_lp::exact::solve_mds(&g, &kw_lp::exact::ExactOptions::default()).unwrap(),
    ));
    let exact_size = outputs.last().unwrap().1.len();
    for (name, ds) in &outputs {
        assert!(ds.is_dominating(&g), "{name} not dominating");
        assert!(ds.len() >= exact_size, "{name} beat the exact optimum?!");
    }
}

#[test]
fn lp_rounding_composition_matches_theorem3_shape() {
    // Round the *exact* LP solution (α = 1): expect mean size within
    // (1 + ln(Δ+1))·LP_OPT with slack.
    let g = generators::grid(7, 7);
    let lp = kw_lp::domset::solve_lp_mds(&g).unwrap();
    let trials = 80;
    let mut total = 0usize;
    for seed in 0..trials {
        let run = kw_core::rounding::run_rounding(
            &g,
            &lp.x,
            kw_core::rounding::RoundingConfig::default(),
            EngineConfig::seeded(seed),
        )
        .unwrap();
        assert!(run.set.is_dominating(&g));
        total += run.set.len();
    }
    let mean = total as f64 / trials as f64;
    let bound = kw_core::math::rounding_bound(1.0, g.max_degree()) * lp.value;
    assert!(
        mean <= bound * 1.1,
        "mean {mean} vs Theorem-3 bound {bound}"
    );
}

#[test]
fn weighted_pipeline_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(3000);
    let g = generators::unit_disk(50, 0.25, &mut rng);
    let costs: Vec<f64> = (0..50).map(|i| 1.0 + (i % 7) as f64).collect();
    let w = VertexWeights::from_values(costs).unwrap();
    let frac = kw_core::weighted::run_weighted_alg2(&g, &w, 3, EngineConfig::seeded(4)).unwrap();
    assert!(frac.x.is_feasible(&g));
    let lower = kw_lp::bounds::weighted_lemma1_bound(&g, &w);
    assert!(
        frac.cost >= lower - 1e-9,
        "weighted objective below the dual bound"
    );
    let rounded = kw_core::rounding::run_rounding(
        &g,
        &frac.x,
        kw_core::rounding::RoundingConfig::default(),
        EngineConfig::seeded(5),
    )
    .unwrap();
    assert!(rounded.set.is_dominating(&g));
}

#[test]
fn readme_quickstart_snippet_works() {
    let mut rng = SmallRng::seed_from_u64(42);
    let g = kw_graph::generators::unit_disk(150, 0.15, &mut rng);
    let registry = kw_domset::default_registry();
    let report = registry
        .build("kw:k=2")
        .expect("registered")
        .solve(&g, &SolveContext::seeded(42))
        .expect("pipeline runs");
    let cert = report
        .certificate
        .as_ref()
        .expect("certificates default on");
    assert!(cert.dominates);
    assert!(cert.ratio_vs_lemma1 >= 1.0 - 1e-9);
    for spec in ["greedy", "jrs", "luby-mis", "trivial", "connected(kw:k=2)"] {
        let report = registry
            .build(spec)
            .unwrap()
            .solve(&g, &SolveContext::seeded(42))
            .unwrap();
        assert!(report.certificate.as_ref().unwrap().dominates, "{spec}");
    }
}
