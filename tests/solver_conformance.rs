//! Conformance suite for the unified solver API: every registered solver,
//! over a shared workload matrix, must (a) dominate, (b) be deterministic
//! in the seed, and (c) produce internally consistent reports.
//!
//! New solver backends get these guarantees for free by registering; a
//! backend that cannot pass them does not belong behind `DsSolver`.

use kw_domset::prelude::*;
use kw_graph::{generators, CsrGraph};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Every spec the default registry documents, including parameterized and
/// combinator forms.
fn all_specs() -> Vec<&'static str> {
    vec![
        "kw:k=1",
        "kw:k=2",
        "kw:k=3,multiplier=ln-lnln",
        "alg2:k=2",
        "composite:k=2",
        "greedy",
        "jrs",
        "luby-mis",
        "trivial",
        "connected(greedy)",
        "connected(kw:k=2)",
    ]
}

/// The shared workload matrix: every graph family the algorithms must
/// handle, including edge cases (empty graph, isolated nodes).
fn workload_matrix() -> Vec<(String, CsrGraph)> {
    let mut rng = SmallRng::seed_from_u64(77);
    vec![
        ("empty0".into(), CsrGraph::empty(0)),
        ("isolated5".into(), CsrGraph::empty(5)),
        ("path9".into(), generators::path(9)),
        ("star16".into(), generators::star(16)),
        ("grid6x6".into(), generators::grid(6, 6)),
        ("petersen".into(), generators::petersen()),
        ("cliques4x6".into(), generators::star_of_cliques(4, 6)),
        ("gnp60".into(), generators::gnp(60, 0.08, &mut rng)),
        ("udg60".into(), generators::unit_disk(60, 0.2, &mut rng)),
        ("ba60".into(), generators::barabasi_albert(60, 2, &mut rng)),
    ]
}

fn membership(g: &CsrGraph, report: &SolveReport) -> Vec<bool> {
    report.dominating_set.to_bool_vec(g)
}

#[test]
fn every_solver_dominates_every_workload() {
    let registry = kw_domset::default_registry();
    for spec in all_specs() {
        let solver = registry.build(spec).unwrap();
        for (label, g) in workload_matrix() {
            let report = solver.solve(&g, &SolveContext::seeded(5)).unwrap();
            let cert = report
                .certificate
                .as_ref()
                .expect("certificates default on");
            assert!(cert.dominates, "{spec} on {label}: output not dominating");
            assert!(
                report.dominating_set.is_dominating(&g),
                "{spec} on {label}: certificate lied"
            );
        }
    }
}

#[test]
fn same_seed_means_identical_output() {
    let registry = kw_domset::default_registry();
    for spec in all_specs() {
        let solver = registry.build(spec).unwrap();
        for (label, g) in workload_matrix() {
            let a = solver.solve(&g, &SolveContext::seeded(31)).unwrap();
            let b = solver.solve(&g, &SolveContext::seeded(31)).unwrap();
            assert_eq!(
                membership(&g, &a),
                membership(&g, &b),
                "{spec} on {label}: same seed produced different sets"
            );
            assert_eq!(a.metrics, b.metrics, "{spec} on {label}: metrics differ");
        }
    }
}

#[test]
fn deterministic_solvers_ignore_the_seed() {
    let registry = kw_domset::default_registry();
    for spec in ["greedy", "trivial", "connected(greedy)"] {
        let solver = registry.build(spec).unwrap();
        assert!(!solver.randomized(), "{spec} should be deterministic");
        let g = generators::grid(5, 7);
        let a = solver.solve(&g, &SolveContext::seeded(1)).unwrap();
        let b = solver.solve(&g, &SolveContext::seeded(999)).unwrap();
        assert_eq!(
            membership(&g, &a),
            membership(&g, &b),
            "{spec} depends on the seed"
        );
    }
}

#[test]
fn thread_count_never_changes_solver_output() {
    let registry = kw_domset::default_registry();
    let mut rng = SmallRng::seed_from_u64(12);
    let g = generators::gnp(90, 0.07, &mut rng);
    for spec in ["kw:k=2", "alg2:k=2", "composite:k=2"] {
        let solver = registry.build(spec).unwrap();
        let seq = solver.solve(&g, &SolveContext::seeded(8)).unwrap();
        let par_ctx = SolveContext {
            threads: 4,
            ..SolveContext::seeded(8)
        };
        let par = solver.solve(&g, &par_ctx).unwrap();
        assert_eq!(
            membership(&g, &seq),
            membership(&g, &par),
            "{spec}: threads changed output"
        );
        assert_eq!(seq.metrics, par.metrics, "{spec}: threads changed metrics");
    }
}

#[test]
fn reports_are_internally_consistent() {
    let registry = kw_domset::default_registry();
    for spec in all_specs() {
        let solver = registry.build(spec).unwrap();
        assert_eq!(solver.spec(), spec, "canonical spec differs from input");
        for (label, g) in workload_matrix() {
            let report = solver.solve(&g, &SolveContext::seeded(17)).unwrap();
            let tag = format!("{spec} on {label}");
            // The solver field echoes the canonical spec.
            assert_eq!(report.solver, spec, "{tag}");
            // Merged metrics equal the fold of the stage metrics.
            let rounds: usize = report.stages.iter().map(|s| s.metrics.rounds).sum();
            let messages: u64 = report.stages.iter().map(|s| s.metrics.messages).sum();
            let bits: u64 = report.stages.iter().map(|s| s.metrics.bits).sum();
            assert_eq!(report.rounds(), rounds, "{tag}: rounds don't sum");
            assert_eq!(report.messages(), messages, "{tag}: messages don't sum");
            assert_eq!(report.metrics.bits, bits, "{tag}: bits don't sum");
            assert_eq!(
                report.metrics.max_message_bits,
                report
                    .stages
                    .iter()
                    .map(|s| s.metrics.max_message_bits)
                    .max()
                    .unwrap_or(0),
                "{tag}: max message bits isn't the stage max"
            );
            // Accessors agree with the underlying set.
            assert_eq!(report.size(), report.dominating_set.len(), "{tag}");
            // Certificate agrees with direct verification.
            let cert = report.certificate.as_ref().unwrap();
            assert_eq!(cert.lemma1_bound, kw_lp::bounds::lemma1_bound(&g), "{tag}");
            if cert.lemma1_bound > 0.0 {
                assert!(
                    (cert.ratio_vs_lemma1 - report.size() as f64 / cert.lemma1_bound).abs() < 1e-12,
                    "{tag}: ratio inconsistent"
                );
            }
            match &report.fractional {
                Some(x) => {
                    assert_eq!(x.len(), g.len(), "{tag}: fractional length");
                    assert_eq!(cert.fractional_feasible, Some(x.is_feasible(&g)), "{tag}");
                    assert_eq!(cert.fractional_objective, Some(x.objective()), "{tag}");
                }
                None => {
                    assert_eq!(cert.fractional_feasible, None, "{tag}");
                    assert_eq!(cert.fractional_objective, None, "{tag}");
                }
            }
        }
    }
}

#[test]
fn experiment_runner_matches_individual_solves() {
    // The matrix runner must report exactly what per-seed solves produce.
    let registry = kw_domset::default_registry();
    let solvers = registry.build_all(["kw:k=2", "greedy"]).unwrap();
    let workloads = vec![("grid5x5".to_string(), generators::grid(5, 5))];
    let seeds: Vec<u64> = (0..4).collect();
    let cells = ExperimentRunner::new()
        .run_matrix(&solvers, &workloads, seeds.iter().copied())
        .unwrap();
    for (solver, cell) in solvers.iter().zip(&cells) {
        let sizes: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                solver
                    .solve(&workloads[0].1, &SolveContext::seeded(s))
                    .unwrap()
                    .size() as f64
            })
            .collect();
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert_eq!(cell.runs, seeds.len());
        assert_eq!(cell.failures, 0);
        assert!((cell.size.mean - mean).abs() < 1e-12, "{}", solver.spec());
    }
}

#[test]
fn unknown_and_malformed_specs_fail_cleanly() {
    let registry = kw_domset::default_registry();
    for bad in [
        "nope",
        "kw:k=zero",
        "kw:zz=1",
        "connected()",
        "connected(nope)",
        "greedy:k=2",
    ] {
        assert!(registry.build(bad).is_err(), "{bad:?} should fail to build");
    }
}
