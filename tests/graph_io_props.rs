//! Cross-crate graph plumbing: text I/O round-trips feeding algorithms,
//! component extraction feeding workloads, and property-based checks that
//! the whole chain (generate → serialize → parse → solve) is lossless.

use kw_domset::prelude::*;
use kw_graph::{generators, io, props};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn serialize_parse_solve_is_identical() {
    let mut rng = SmallRng::seed_from_u64(10);
    let g = generators::gnp(80, 0.07, &mut rng);
    let text = io::to_edge_list(&g);
    let parsed = io::parse_edge_list(&text).unwrap();
    assert_eq!(g, parsed);
    // Identical graphs → identical (deterministic) algorithm outputs.
    let a = kw_core::alg3::reference_alg3(&g, 3).unwrap();
    let b = kw_core::alg3::reference_alg3(&parsed, 3).unwrap();
    assert_eq!(a.values(), b.values());
}

#[test]
fn largest_component_workflow() {
    // Sparse UDG is disconnected; the usual workload is its giant
    // component.
    let mut rng = SmallRng::seed_from_u64(11);
    let g = generators::unit_disk(300, 0.05, &mut rng);
    let (giant, mapping) = props::largest_component(&g);
    assert!(props::is_connected(&giant));
    assert_eq!(giant.len(), mapping.len());
    // Solve on the component and verify through the mapping.
    let out = Pipeline::new(PipelineConfig::default())
        .run(&giant, 1)
        .unwrap();
    assert!(out.dominating_set.is_dominating(&giant));
    // Mapped-back heads only contain original node ids.
    for v in out.dominating_set.iter() {
        assert!(mapping[v.index()].index() < g.len());
    }
}

#[test]
fn degree_structure_reaches_algorithms() {
    // δ⁽¹⁾/δ⁽²⁾ as computed centrally equal what Algorithm 3 computes
    // distributively (its output exposes δ²).
    let g = generators::star_of_cliques(3, 9);
    let run = kw_core::alg3::run_alg3(&g, 2, EngineConfig::default()).unwrap();
    for v in g.node_ids() {
        assert_eq!(run.delta2[v.index()] as usize, g.delta2(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn io_roundtrip_any_gnp(n in 0usize..60, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let back = io::parse_edge_list(&io::to_edge_list(&g)).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn dimacs_roundtrip_any_gnp(n in 0usize..60, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let back = io::parse_dimacs(&io::write_dimacs(&g)).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn dimacs_roundtrip_any_unit_disk(n in 1usize..80, seed in any::<u64>()) {
        // Unit-disk graphs are the paper's motivating topology and the
        // shape real DIMACS-format files would feed into workloads.
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::unit_disk(n, 0.2, &mut rng);
        let back = io::parse_dimacs(&io::write_dimacs(&g)).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn lenient_dimacs_agrees_with_strict_on_clean_files(
        n in 0usize..60,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        // On anything write_dimacs emits, the lenient parser must
        // produce the identical graph with nothing to clean up.
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let text = io::write_dimacs(&g);
        let (lenient, stats) = io::parse_dimacs_lenient(&text).unwrap();
        prop_assert_eq!(&lenient, &io::parse_dimacs(&text).unwrap());
        prop_assert_eq!(lenient, g);
        prop_assert_eq!(stats.duplicate_edges, 0);
        prop_assert_eq!(stats.self_loops, 0);
        prop_assert_eq!(stats.skipped_lines, 0);
    }

    #[test]
    fn lenient_dimacs_cleans_adversarial_duplication(
        n in 2usize..40,
        p in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        // Re-list every edge in both orientations plus a self-loop and a
        // node line — the real-download quirks — and require the lenient
        // parse to recover exactly the original graph.
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let m = g.num_edges();
        let mut text = format!("p edge {} {}\nn 1 42\ne 1 1\n", n, 2 * m + 1);
        for (u, v) in g.edges() {
            text.push_str(&format!("e {} {}\n", u.index() + 1, v.index() + 1));
            text.push_str(&format!("e {} {}\n", v.index() + 1, u.index() + 1));
        }
        let (back, stats) = io::parse_dimacs_lenient(&text).unwrap();
        prop_assert_eq!(back, g);
        prop_assert_eq!(stats.duplicate_edges, m);
        prop_assert_eq!(stats.self_loops, 1);
        prop_assert_eq!(stats.skipped_lines, 1);
        // Strict mode refuses the same text whenever it has an edge (the
        // node line alone already kills it).
        prop_assert!(io::parse_dimacs(&text).is_err());
    }

    #[test]
    fn components_partition_nodes(n in 1usize..60, p in 0.0f64..0.1, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let comp = props::connected_components(&g);
        prop_assert_eq!(comp.len(), n);
        let k = props::num_components(&g);
        prop_assert!(comp.iter().all(|&c| c < k));
        // Every edge stays within its component.
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u.index()], comp[v.index()]);
        }
    }

    #[test]
    fn pipeline_dominates_arbitrary_random_graphs(
        n in 1usize..50,
        p in 0.0f64..0.5,
        k in 1u32..4,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::gnp(n, p, &mut rng);
        let out = Pipeline::new(PipelineConfig { k, ..Default::default() })
            .run(&g, seed)
            .unwrap();
        prop_assert!(out.dominating_set.is_dominating(&g));
    }
}
