//! Chaos-plane robustness, end to end: garbled wire bytes never panic a
//! registered decoder, chaotic runs are thread-count invariant, and the
//! ISSUE's full chaos cell (drop + burst + crash + byzantine) survives
//! parse → solve → cache → persist → resume → regress.

use kw_baselines::jrs::JrsMsg;
use kw_baselines::luby_mis::MisMsg;
use kw_core::alg2::Alg2Msg;
use kw_core::alg3::{Alg3Msg, XCode};
use kw_core::composite::CompositeMsg;
use kw_core::rounding::RoundingMsg;
use kw_core::solver::{ExperimentRunner, SolveContext};
use kw_graph::generators;
use kw_results::regress::{compare, RegressPolicy};
use kw_results::summary::Summary;
use kw_results::SweepSession;
use kw_sim::wire::{BitReader, BitWriter, WireEncode};
use kw_sim::ChaosPlan;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The ISSUE's example clause: every chaos axis at once.
const FULL_MIX: &str = "drop=0.1,burst=r3-5@0.9,crash=7@r2,byz=3";

/// Feeds a decoder (a) arbitrary garbage bytes and (b) valid encodings
/// garbled by the byzantine corruption — the exact bytes the engine's
/// decode-or-reject boundary sees. The assertion is the absence of a
/// panic; a successful decode must also re-encode without panicking.
fn fuzz_decoder<M: WireEncode>(name: &str, samples: &[M], rng: &mut SmallRng) {
    for len in 0..24usize {
        for _ in 0..64 {
            let bytes: Vec<u8> = (0..len).map(|_| (rng.gen::<u64>() & 0xff) as u8).collect();
            let mut r = BitReader::new(&bytes);
            if let Some(decoded) = M::decode(&mut r) {
                let mut w = BitWriter::new();
                decoded.encode(&mut w);
            }
        }
    }
    let plan = ChaosPlan::reliable()
        .with_fault_seed(0xbad)
        .with_byzantine(0);
    for (slot, msg) in samples.iter().enumerate() {
        let mut w = BitWriter::new();
        msg.encode(&mut w);
        let encoded = w.into_bytes();
        assert!(!encoded.is_empty(), "{name}: sample must encode to bytes");
        for round in 0..64 {
            let mut bytes = encoded.clone();
            plan.corrupt(&mut bytes, round, 0, slot as u32);
            assert_ne!(bytes, encoded, "{name}: corruption must never be identity");
            let mut r = BitReader::new(&bytes);
            if let Some(decoded) = M::decode(&mut r) {
                let mut w = BitWriter::new();
                decoded.encode(&mut w);
            }
        }
    }
}

#[test]
fn garbled_bytes_never_panic_any_registered_decoder() {
    let mut rng = SmallRng::seed_from_u64(99);
    fuzz_decoder("u64", &[0u64, 7, u64::MAX], &mut rng);
    fuzz_decoder("bool", &[false, true], &mut rng);
    fuzz_decoder("f64", &[0.0f64, 0.25, 1.0], &mut rng);
    fuzz_decoder(
        "Alg2Msg",
        &[Alg2Msg::X(None), Alg2Msg::X(Some(3)), Alg2Msg::Color(true)],
        &mut rng,
    );
    fuzz_decoder(
        "Alg3Msg",
        &[
            Alg3Msg::Uint(41),
            Alg3Msg::Active,
            Alg3Msg::X(Some(XCode { a: 5, m: 2 })),
            Alg3Msg::X(None),
            Alg3Msg::Color(false),
        ],
        &mut rng,
    );
    fuzz_decoder(
        "RoundingMsg",
        &[RoundingMsg::Degree(9), RoundingMsg::InSet(true)],
        &mut rng,
    );
    fuzz_decoder(
        "CompositeMsg",
        &[
            CompositeMsg::Lp(Alg3Msg::Uint(3)),
            CompositeMsg::Lp(Alg3Msg::X(Some(XCode { a: 2, m: 1 }))),
            CompositeMsg::InSet(false),
        ],
        &mut rng,
    );
    fuzz_decoder(
        "JrsMsg",
        &[
            JrsMsg::Covered(true),
            JrsMsg::Class(Some(4)),
            JrsMsg::MaxClass(None),
            JrsMsg::Candidate,
            JrsMsg::Support(17),
            JrsMsg::Joined,
        ],
        &mut rng,
    );
    fuzz_decoder(
        "MisMsg",
        &[
            MisMsg::Ticket {
                value: 0xdead_beef,
                id: 12,
            },
            MisMsg::Joined,
        ],
        &mut rng,
    );
}

#[test]
fn chaotic_solve_reports_are_thread_count_invariant() {
    let mut rng = SmallRng::seed_from_u64(4);
    let g = generators::unit_disk(150, 0.12, &mut rng);
    let plan = ChaosPlan::parse(FULL_MIX).unwrap();
    let registry = kw_baselines::registry();
    // Every engine-backed solver in the registry; greedy/trivial are
    // centralized and see no chaos.
    for spec in ["kw:k=2", "jrs", "luby-mis"] {
        let solver = registry.build(spec).unwrap();
        let base = solver
            .solve(
                &g,
                &SolveContext {
                    seed: 3,
                    threads: 1,
                    faults: plan.clone(),
                    check_certificates: true,
                    ..SolveContext::default()
                },
            )
            .unwrap();
        for threads in [2usize, 8] {
            let report = solver
                .solve(
                    &g,
                    &SolveContext {
                        seed: 3,
                        threads,
                        faults: plan.clone(),
                        check_certificates: true,
                        ..SolveContext::default()
                    },
                )
                .unwrap();
            assert_eq!(
                report.dominating_set, base.dominating_set,
                "{spec}: set differs at threads={threads}"
            );
            assert_eq!(
                report.metrics, base.metrics,
                "{spec}: metrics differ at threads={threads}"
            );
        }
        // The chaos plan is exercised, not vacuous: byzantine rejections
        // or down rounds must actually have occurred for the full mix.
        assert!(
            base.metrics.byz_rejected > 0 || base.metrics.messages > 0,
            "{spec}: chaotic run produced no traffic at all"
        );
    }
}

#[test]
fn full_chaos_cell_survives_persist_resume_and_regress() {
    // Parse + canonical round-trip: the spec string is the fingerprint.
    let plan = ChaosPlan::parse(FULL_MIX).unwrap();
    assert_eq!(plan.spec(), FULL_MIX, "ISSUE clause is already canonical");
    assert_eq!(ChaosPlan::parse(&plan.spec()).unwrap(), plan);
    // The `chaos:` prefix is accepted and normalizes to the same plan.
    assert_eq!(
        ChaosPlan::parse(&format!("chaos:{FULL_MIX}")).unwrap(),
        plan
    );

    let store = std::env::temp_dir().join(format!("kw_chaos_e2e_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&store);
    let registry = kw_baselines::registry();
    let solvers = registry.build_all(["kw:k=2"]).unwrap();
    let workloads = vec![("grid8".to_string(), generators::grid(8, 8))];
    let runner = ExperimentRunner::new().workers(0).context(SolveContext {
        faults: plan.clone(),
        ..SolveContext::default()
    });

    // Pass 1: solve and persist every chaos cell.
    let mut session = SweepSession::open(&store).unwrap();
    let out = session
        .run(&runner, &solvers, &workloads, 0..4, |_| {})
        .unwrap();
    assert_eq!(out.solved, 4, "cold store must solve every cell");
    assert!(out.store_error.is_none());
    for r in &out.records {
        assert_eq!(r.chaos, FULL_MIX, "records carry the canonical spec");
    }
    drop(session);

    // Pass 2: a fresh session resumes with 100% cache hits.
    let mut resumed = SweepSession::open(&store).unwrap();
    assert_eq!(resumed.replayed(), 4);
    let replay = resumed
        .run(&runner, &solvers, &workloads, 0..4, |_| {})
        .unwrap();
    assert_eq!(replay.solved, 0, "chaos cells must resume from the store");
    assert_eq!(replay.cached, 4);

    // A *different* chaos plan under the same (solver, workload, seed)
    // must NOT hit those cells.
    let other = ExperimentRunner::new().workers(0).context(SolveContext {
        faults: ChaosPlan::parse("drop=0.3,seed=9").unwrap(),
        ..SolveContext::default()
    });
    let miss = resumed
        .run(&other, &solvers, &workloads, 0..4, |_| {})
        .unwrap();
    assert_eq!(miss.solved, 4, "distinct chaos specs are distinct cells");

    // Regress gating: the resumed records match the original cell
    // exactly (chaos-aware), and the unrelated chaos cell doesn't
    // cross-compare with it.
    let baseline = Summary::from_records(&out.records);
    let fresh = Summary::from_records(&replay.records);
    assert!(compare(&baseline, &fresh, &RegressPolicy::default()).is_empty());
    let _ = std::fs::remove_file(&store);
}
