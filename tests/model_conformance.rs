//! LOCAL-model conformance: determinism across thread counts, wire-format
//! integrity for every protocol, and the complexity claims (rounds,
//! per-node messages, message bits) measured exactly.

use kw_domset::prelude::*;
use kw_graph::generators;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn test_graph(seed: u64) -> kw_graph::CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    generators::gnp(90, 0.08, &mut rng)
}

#[test]
fn thread_count_never_changes_results() {
    let g = test_graph(1);
    for threads in [1usize, 2, 4, 8] {
        let cfg = EngineConfig {
            threads,
            seed: 5,
            ..Default::default()
        };
        let a2 = kw_core::alg2::run_alg2(&g, 3, cfg.clone()).unwrap();
        let a3 = kw_core::alg3::run_alg3(&g, 3, cfg).unwrap();
        let base2 = kw_core::alg2::run_alg2(&g, 3, EngineConfig::seeded(5)).unwrap();
        let base3 = kw_core::alg3::run_alg3(&g, 3, EngineConfig::seeded(5)).unwrap();
        assert_eq!(a2.x.values(), base2.x.values(), "alg2 threads={threads}");
        assert_eq!(a3.x.values(), base3.x.values(), "alg3 threads={threads}");
        assert_eq!(a2.metrics, base2.metrics);
        assert_eq!(a3.metrics, base3.metrics);
    }
}

#[test]
fn wire_checking_passes_for_all_protocols() {
    // check_wire makes the engine decode every message it accounts; any
    // encode/decode drift fails the run.
    let g = test_graph(2);
    let cfg = EngineConfig {
        check_wire: true,
        seed: 1,
        ..Default::default()
    };
    kw_core::alg2::run_alg2(&g, 2, cfg.clone()).unwrap();
    kw_core::alg3::run_alg3(&g, 2, cfg.clone()).unwrap();
    let x = kw_graph::FractionalAssignment::uniform(&g, 0.2);
    kw_core::rounding::run_rounding(&g, &x, Default::default(), cfg.clone()).unwrap();
    let w = VertexWeights::uniform(&g);
    kw_core::weighted::run_weighted_alg2(&g, &w, 2, cfg).unwrap();
}

#[test]
fn round_counts_are_exactly_the_theorem_values() {
    let g = test_graph(3);
    for k in 1..=5u32 {
        let a2 = kw_core::alg2::run_alg2(&g, k, EngineConfig::default()).unwrap();
        assert_eq!(
            a2.metrics.rounds,
            2 * (k * k) as usize,
            "Theorem 4: 2k² rounds"
        );
        let a3 = kw_core::alg3::run_alg3(&g, k, EngineConfig::default()).unwrap();
        assert_eq!(
            a3.metrics.rounds,
            (4 * k * k + 2 * k) as usize,
            "Theorem 5: 4k²+O(k)"
        );
    }
    let x = kw_graph::FractionalAssignment::uniform(&g, 0.5);
    let r = kw_core::rounding::run_rounding(&g, &x, Default::default(), EngineConfig::default())
        .unwrap();
    assert_eq!(r.metrics.rounds, 4, "Algorithm 1 is constant-round");
}

#[test]
fn per_node_message_complexity_is_o_k2_delta() {
    let g = test_graph(4);
    for k in [2u32, 4] {
        let run = kw_core::alg3::run_alg3(&g, k, EngineConfig::default()).unwrap();
        let k2 = (k * k) as u64;
        for v in g.node_ids() {
            let deg = g.degree(v) as u64;
            // ≤ (4 messages per inner iteration + O(k) boundary messages
            // + 2 setup) broadcasts, each of `deg` copies.
            let cap = (4 * k2 + 2 * u64::from(k) + 2) * deg;
            assert!(
                run.node_messages[v.index()] <= cap,
                "node {v}: {} messages > cap {cap} (k={k})",
                run.node_messages[v.index()]
            );
        }
    }
}

#[test]
fn message_sizes_grow_logarithmically_with_delta() {
    // Double Δ several times; max message bits must grow by O(1) per
    // doubling (gamma code: ~2 bits per doubling).
    let mut prev_bits = 0usize;
    for exp in 3..8u32 {
        let leaves = 1usize << exp;
        let g = generators::star(leaves + 1);
        let run = kw_core::alg3::run_alg3(&g, 2, EngineConfig::default()).unwrap();
        let bits = run.metrics.max_message_bits;
        if prev_bits > 0 {
            assert!(
                bits <= prev_bits + 4,
                "message bits jumped {prev_bits} -> {bits} on Δ doubling"
            );
        }
        prev_bits = bits;
    }
}

#[test]
fn rounding_uses_constant_bits_per_message() {
    let g = generators::star(512);
    let x = kw_graph::FractionalAssignment::uniform(&g, 0.1);
    let run = kw_core::rounding::run_rounding(&g, &x, Default::default(), EngineConfig::seeded(0))
        .unwrap();
    // Largest message is a Degree(511): 1 tag + gamma(511) = 1 + 19 bits.
    assert!(
        run.metrics.max_message_bits <= 20,
        "{}",
        run.metrics.max_message_bits
    );
}

#[test]
fn engine_seed_controls_all_randomness() {
    let g = test_graph(5);
    let p = kw_core::Pipeline::new(PipelineConfig::default());
    let a = p.run(&g, 1).unwrap().dominating_set;
    let b = p.run(&g, 2).unwrap().dominating_set;
    let a2 = p.run(&g, 1).unwrap().dominating_set;
    let av: Vec<bool> = g.node_ids().map(|v| a.contains(v)).collect();
    let bv: Vec<bool> = g.node_ids().map(|v| b.contains(v)).collect();
    let av2: Vec<bool> = g.node_ids().map(|v| a2.contains(v)).collect();
    assert_eq!(av, av2, "same seed must reproduce");
    assert_ne!(
        av, bv,
        "different seeds should explore different rounding draws"
    );
}

#[test]
fn invariant_checkers_are_clean_across_families() {
    let mut rng = SmallRng::seed_from_u64(6);
    for g in [
        generators::gnp(70, 0.1, &mut rng),
        generators::barabasi_albert(70, 3, &mut rng),
        generators::star_of_cliques(4, 8),
        generators::caterpillar(10, 3),
    ] {
        for k in [2u32, 4] {
            let (_, rep2) =
                kw_core::invariants::run_alg2_checked(&g, k, EngineConfig::default()).unwrap();
            assert!(rep2.is_clean(), "alg2 k={k}: {:?}", rep2.violations);
            let (_, rep3) =
                kw_core::invariants::run_alg3_checked(&g, k, EngineConfig::default()).unwrap();
            assert!(rep3.is_clean(), "alg3 k={k}: {:?}", rep3.violations);
        }
    }
}
